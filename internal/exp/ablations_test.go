package exp

import (
	"strings"
	"testing"

	"ultrascalar/internal/vlsi"
)

func TestSharedALUsMonotone(t *testing.T) {
	rows, err := SharedALUs(128, []int{1, 4, 16, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Cycles are nonincreasing with more ALUs; 16 shared ALUs get within
	// 20% of one-per-station on the mixed workload (the paper's claim
	// that sharing is effective).
	for i := 1; i < len(rows); i++ {
		if rows[i].Cycles > rows[i-1].Cycles {
			t.Errorf("cycles should not grow with ALUs: %+v", rows)
		}
	}
	full := rows[len(rows)-1].Cycles
	sixteen := rows[2].Cycles
	if float64(sixteen) > 1.2*float64(full) {
		t.Errorf("16 shared ALUs at %d cycles vs %d with full ALUs: sharing should be cheap",
			sixteen, full)
	}
	rep, err := SharedALUsReport(128)
	if err != nil || !strings.Contains(rep, "one per station") {
		t.Errorf("report bad: %v", err)
	}
}

func TestSelfTimedChainKeepsCycles(t *testing.T) {
	rows, err := SelfTimed(32)
	if err != nil {
		t.Fatal(err)
	}
	var chain *SelfTimedRow
	for i := range rows {
		if rows[i].Workload == "chain" {
			chain = &rows[i]
		}
		if rows[i].Slowdown < 0.999 {
			t.Errorf("%s: self-timed cannot be faster in cycles (ratio %.2f)",
				rows[i].Workload, rows[i].Slowdown)
		}
	}
	if chain == nil {
		t.Fatal("chain workload missing")
	}
	if chain.Slowdown > 1.001 {
		t.Errorf("chain slowdown %.3f, want 1.0 (all distance-1)", chain.Slowdown)
	}
	if chain.LocalFrac < 0.9 {
		t.Errorf("chain local fraction %.2f, want ~1", chain.LocalFrac)
	}
	if _, err := SelfTimedReport(32); err != nil {
		t.Error(err)
	}
}

func TestMemRenamingWinsWhenBandwidthScarce(t *testing.T) {
	rows, err := MemRenaming(16)
	if err != nil {
		t.Fatal(err)
	}
	// At M(n)=1 renaming must cut cycles and tree traffic.
	r := rows[0]
	if r.RenamedCycles >= r.BaseCycles {
		t.Errorf("renaming should win at M=1: %d vs %d", r.RenamedCycles, r.BaseCycles)
	}
	if r.ForwardedLoads == 0 || r.TreeAccessesOn >= r.TreeAccessesOff {
		t.Errorf("renaming should remove tree accesses: %+v", r)
	}
	if _, err := MemRenamingReport(16); err != nil {
		t.Error(err)
	}
}

func TestFetchModelRows(t *testing.T) {
	rows, err := FetchModels(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Ideal > r.Block {
			t.Errorf("%s: ideal (%d) should not exceed block (%d)", r.Workload, r.Ideal, r.Block)
		}
		if r.Workload == "jumpy" {
			if !(r.Ideal <= r.TraceCycles && r.TraceCycles < r.Block) {
				t.Errorf("jumpy: want ideal (%d) <= trace (%d) < block (%d)",
					r.Ideal, r.TraceCycles, r.Block)
			}
		}
	}
	if _, err := FetchModelsReport(64); err != nil {
		t.Error(err)
	}
}

func TestLargeLGrowsAdvantage(t *testing.T) {
	rows, err := LargeL(vlsi.Tech035())
	if err != nil {
		t.Fatal(err)
	}
	// The per-station advantage grows with the register-file size and is
	// "dramatic" at 64x64.
	first, last := rows[0], rows[len(rows)-1]
	if last.AreaRatio <= first.AreaRatio {
		t.Errorf("advantage should grow with L,W: %.1f -> %.1f", first.AreaRatio, last.AreaRatio)
	}
	if last.AreaRatio < 10 {
		t.Errorf("64x64 advantage %.1fx, expected dramatic (>10x)", last.AreaRatio)
	}
	if _, err := LargeLReport(vlsi.Tech035()); err != nil {
		t.Error(err)
	}
}

func TestReturnStackAblation(t *testing.T) {
	rows, err := ReturnStack(32)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		switch r.Workload {
		case "hanoi", "quicksort":
			if r.RASCycles >= r.BTBCycles || r.RASMispredicts >= r.BTBMispredicts {
				t.Errorf("%s: RAS should win: %+v", r.Workload, r)
			}
		case "gcd":
			if r.RASCycles != r.BTBCycles {
				t.Errorf("gcd has no calls; RAS changed cycles %d -> %d",
					r.BTBCycles, r.RASCycles)
			}
		}
	}
	if _, err := ReturnStackReport(32); err != nil {
		t.Error(err)
	}
}

func TestGateLevelMatches(t *testing.T) {
	rows, err := GateLevel(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no gate-level rows")
	}
	for _, r := range rows {
		if !r.Match {
			t.Errorf("%s: gate-level state mismatch", r.Workload)
		}
		if r.Ultra2Cycles < r.Ultra1Cycles {
			t.Errorf("%s: gate-level UltraII (%d) beat UltraI (%d)",
				r.Workload, r.Ultra2Cycles, r.Ultra1Cycles)
		}
	}
	rep, err := GateLevelReport(4)
	if err != nil || !strings.Contains(rep, "MATCH") || strings.Contains(rep, "MISMATCH") {
		t.Errorf("gate-level report bad: %v", err)
	}
}

func TestClusterCachesWin(t *testing.T) {
	rows, err := ClusterCaches(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for _, r := range rows {
		if r.CacheCycles < r.BaseCycles && r.ClusterHits > 0 {
			wins++
		}
	}
	if wins == 0 {
		t.Errorf("cluster caches should help at least one workload: %+v", rows)
	}
	if _, err := ClusterCachesReport(16, 4); err != nil {
		t.Error(err)
	}
}
