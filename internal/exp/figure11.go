package exp

import (
	"fmt"
	"math"
	"strings"

	"ultrascalar/internal/analysis"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/vlsi"
)

// Figure 11 is the paper's headline comparison table: gate delay, wire
// delay, total delay and area of the Ultrascalar I, Ultrascalar II
// (linear and log gates) and the hybrid, under the three memory-bandwidth
// regimes. This experiment regenerates it empirically: it sweeps n over
// the constructive models, fits growth exponents, and prints them next to
// the paper's Θ bounds.

// ArchKind enumerates the compared processors.
type ArchKind int

// The four compared datapaths of Figure 11.
const (
	ArchUltra1 ArchKind = iota
	ArchUltra2Linear
	ArchUltra2Log
	ArchHybrid
)

var archNames = map[ArchKind]string{
	ArchUltra1:       "Ultrascalar I",
	ArchUltra2Linear: "Ultrascalar II (linear)",
	ArchUltra2Log:    "Ultrascalar II (log)",
	ArchHybrid:       "Hybrid",
}

// Name returns the display name.
func (a ArchKind) Name() string { return archNames[a] }

// Regime is one memory-bandwidth case of Figure 11.
type Regime struct {
	Label string
	M     memory.MFunc
	P     float64 // M(n) = Θ(n^P)
}

// Regimes returns the paper's three bandwidth cases, instantiated as
// concrete power laws.
func Regimes() []Regime {
	return []Regime{
		{Label: "M(n)=O(n^1/2-e)", M: memory.MPow(1, 0.25), P: 0.25},
		{Label: "M(n)=Th(n^1/2)", M: memory.MPow(1, 0.5), P: 0.5},
		// The coefficient 4 pulls the asymptotic M(n) dominance into the
		// measured sweep range (the regime is still Ω(n^{1/2+ε})).
		{Label: "M(n)=Om(n^1/2+e)", M: memory.MPow(4, 0.75), P: 0.75},
	}
}

// Figure11Cell is the measured scaling of one quantity for one processor
// in one regime.
type Figure11Cell struct {
	Arch     ArchKind
	Regime   string
	Quantity string // "gate", "wire", "total", "area"
	Fit      analysis.PowerFit
	// Predicted is the paper's Θ bound rendered as text; PredictedExp is
	// the dominant exponent in n with L fixed (logs count as 0).
	Predicted    string
	PredictedExp float64
}

// model builds the physical model of one architecture.
func model(a ArchKind, n, l, w int, m memory.MFunc, t vlsi.Tech) (*vlsi.Model, error) {
	switch a {
	case ArchUltra1:
		return vlsi.UltraIModel(n, l, w, m, t, vlsi.UltraIOptions{})
	case ArchUltra2Linear:
		return vlsi.Ultra2Model(n, l, w, m, t, vlsi.Ultra2Linear)
	case ArchUltra2Log:
		return vlsi.Ultra2Model(n, l, w, m, t, vlsi.Ultra2Tree)
	default:
		return vlsi.HybridModel(n, l, l, w, m, t, vlsi.Ultra2Linear)
	}
}

// predictions returns the paper's Figure 11 entry and its dominant
// exponent in n (L fixed) for the given architecture, regime exponent p,
// and quantity.
func predictions(a ArchKind, p float64, q string) (string, float64) {
	memExp := math.Max(0.5, p) // the wire/side bound max(√n·L, M(n)) at fixed L
	switch a {
	case ArchUltra1:
		switch q {
		case "gate":
			return "Th(log n)", 0
		case "wire", "total":
			if p > 0.5 {
				return "Th(sqrt(n)L + M(n))", memExp
			}
			return "Th(sqrt(n)L)", 0.5
		case "area":
			if p > 0.5 {
				return "Th(nL^2 + M(n)^2)", math.Max(1, 2*p)
			}
			return "Th(nL^2)", 1
		}
	case ArchUltra2Linear:
		switch q {
		case "gate", "wire", "total":
			return "Th(n+L)", 1
		case "area":
			return "Th(n^2+L^2)", 2
		}
	case ArchUltra2Log:
		switch q {
		case "gate":
			return "Th(log(n+L))", 0
		case "wire", "total":
			return "Th((n+L)log(n+L))", 1
		case "area":
			return "Th((n+L)^2 log^2(n+L))", 2
		}
	case ArchHybrid:
		switch q {
		case "gate":
			return "Th(L + log n)", 0
		case "wire", "total":
			if p > 0.5 {
				return "Th(sqrt(nL) + M(n))", memExp
			}
			return "Th(sqrt(nL))", 0.5
		case "area":
			if p > 0.5 {
				return "Th(nL + M(n)^2)", math.Max(1, 2*p)
			}
			return "Th(nL)", 1
		}
	}
	return "?", 0
}

// Figure11 sweeps n over [nMin, nMax] (powers of 4) at fixed L and fits
// the growth of every Figure 11 cell. Each (regime, architecture) column
// is an independent model sweep, fanned out across the sweep pool; cell
// order is regime-major, architecture-minor, quantity-last, as before.
func Figure11(l, w, nMin, nMax int, t vlsi.Tech) ([]Figure11Cell, error) {
	type column struct {
		reg Regime
		a   ArchKind
	}
	var cols []column
	for _, reg := range Regimes() {
		for _, a := range []ArchKind{ArchUltra1, ArchUltra2Linear, ArchUltra2Log, ArchHybrid} {
			cols = append(cols, column{reg, a})
		}
	}
	perCol, err := parMap(cols, func(c column) ([]Figure11Cell, error) {
		var ns, gate, wire, total, area []float64
		for n := nMin; n <= nMax; n *= 4 {
			md, err := model(c.a, n, l, w, c.reg.M, t)
			if err != nil {
				return nil, err
			}
			ns = append(ns, float64(n))
			gate = append(gate, float64(md.GateDelay))
			wire = append(wire, md.MaxWireL)
			total = append(total, md.ClockPs(t))
			area = append(area, md.AreaL2())
		}
		var cells []Figure11Cell
		for _, q := range []struct {
			name string
			ys   []float64
		}{{"gate", gate}, {"wire", wire}, {"total", total}, {"area", area}} {
			fit, err := analysis.FitPower(ns, q.ys)
			if err != nil {
				return nil, err
			}
			pred, pexp := predictions(c.a, c.reg.P, q.name)
			cells = append(cells, Figure11Cell{
				Arch: c.a, Regime: c.reg.Label, Quantity: q.name,
				Fit: fit, Predicted: pred, PredictedExp: pexp,
			})
		}
		return cells, nil
	})
	if err != nil {
		return nil, err
	}
	var cells []Figure11Cell
	for _, cs := range perCol {
		cells = append(cells, cs...)
	}
	return cells, nil
}

// Figure11Report renders the comparison in the layout of the paper's
// Figure 11, one block per bandwidth regime.
func Figure11Report(l, w, nMin, nMax int, t vlsi.Tech) (string, error) {
	cells, err := Figure11(l, w, nMin, nMax, t)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: measured scaling exponents (n in [%d, %d], L=%d, fixed)\n", nMin, nMax, l)
	b.WriteString("Exponents fit side/area/delay ~ n^p; logarithmic factors raise the\nmeasured exponent slightly above the predicted dominant power.\n\n")
	byRegime := map[string][]Figure11Cell{}
	var order []string
	for _, c := range cells {
		if _, ok := byRegime[c.Regime]; !ok {
			order = append(order, c.Regime)
		}
		byRegime[c.Regime] = append(byRegime[c.Regime], c)
	}
	for _, reg := range order {
		fmt.Fprintf(&b, "== %s ==\n", reg)
		tab := analysis.NewTable("quantity", "processor", "measured n-exponent", "R2", "paper bound")
		for _, c := range byRegime[reg] {
			tab.Row(c.Quantity, c.Arch.Name(),
				fmt.Sprintf("%.3f (pred %.2f)", c.Fit.Exponent, c.PredictedExp),
				c.Fit.R2, c.Predicted)
		}
		b.WriteString(tab.String())
		b.WriteByte('\n')
	}
	return b.String(), nil
}
