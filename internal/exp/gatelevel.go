package exp

import (
	"fmt"
	"strings"

	"ultrascalar/internal/analysis"
	"ultrascalar/internal/core"
	"ultrascalar/internal/gatesim"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/ref"
	"ultrascalar/internal/workload"
)

// E18: gate-level validation. The gatesim package re-implements the
// Ultrascalar I and Ultrascalar II with the register forwarding and
// sequencing computed by evaluating the actual CSPP/grid netlists each
// cycle. Running the kernel suite through real gates and matching the
// golden interpreter exactly is the closest software analogue of the
// paper's "we implemented VLSI layouts ... to facilitate an empirical
// comparison".

// GateLevelRow is one kernel's outcome across implementations.
type GateLevelRow struct {
	Workload     string
	GoldenInsts  int
	Ultra1Cycles int64 // gate-level Ultrascalar I
	Ultra2Cycles int64 // gate-level Ultrascalar II
	HybridCycles int64 // gate-level hybrid (clusters of half the window)
	EngineCycles int64 // functional engine (UltraI config, same window)
	Match        bool  // all register files and memories equal
}

// GateLevel runs the kernel suite through both gate-level simulators.
func GateLevel(window int) ([]GateLevelRow, error) {
	var rows []GateLevelRow
	for _, w := range workload.Kernels() {
		golden, err := ref.Run(w.Prog, w.Mem(), ref.Config{})
		if err != nil {
			return nil, err
		}
		g1, err := gatesim.Run(w.Prog, w.Mem(), gatesim.Config{
			Window: window, NumRegs: isa.NumRegs, Width: 32,
		})
		if err != nil {
			return nil, fmt.Errorf("%s on gate-level UltraI: %w", w.Name, err)
		}
		g2, err := gatesim.RunUltra2(w.Prog, w.Mem(), gatesim.Config{
			Window: window, NumRegs: isa.NumRegs, Width: 32,
		})
		if err != nil {
			return nil, fmt.Errorf("%s on gate-level UltraII: %w", w.Name, err)
		}
		c := window / 2
		if c < 1 {
			c = 1
		}
		gh, err := gatesim.RunHybrid(w.Prog, w.Mem(), gatesim.HybridConfig{
			Window: window, Cluster: c, NumRegs: isa.NumRegs, Width: 32,
		})
		if err != nil {
			return nil, fmt.Errorf("%s on gate-level hybrid: %w", w.Name, err)
		}
		eng, err := core.Run(w.Prog, w.Mem(), core.Config{Window: window, Granularity: 1})
		if err != nil {
			return nil, err
		}
		match := g1.Mem.Equal(golden.Mem) && g2.Mem.Equal(golden.Mem) && gh.Mem.Equal(golden.Mem)
		for r := range golden.Regs {
			if g1.Regs[r] != golden.Regs[r] || g2.Regs[r] != golden.Regs[r] ||
				gh.Regs[r] != golden.Regs[r] {
				match = false
			}
		}
		rows = append(rows, GateLevelRow{
			Workload:     w.Name,
			GoldenInsts:  golden.Executed,
			Ultra1Cycles: g1.Cycles,
			Ultra2Cycles: g2.Cycles,
			HybridCycles: gh.Cycles,
			EngineCycles: eng.Stats.Cycles,
			Match:        match,
		})
	}
	return rows, nil
}

// GateLevelReport renders E18.
func GateLevelReport(window int) (string, error) {
	rows, err := GateLevel(window)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E18: kernel suite through the gate-level datapaths (window %d)\n\n", window)
	tab := analysis.NewTable("workload", "insts", "gates UltraI", "gates hybrid",
		"gates UltraII", "engine", "arch state")
	for _, r := range rows {
		state := "MATCH"
		if !r.Match {
			state = "MISMATCH"
		}
		tab.Row(r.Workload, r.GoldenInsts, r.Ultra1Cycles, r.HybridCycles,
			r.Ultra2Cycles, r.EngineCycles, state)
	}
	b.WriteString(tab.String())
	b.WriteString("\nForwarding and sequencing computed by evaluating the Figure 4/5 CSPP\nand Figure 7/8 grid netlists every cycle; architectural state matches\nthe golden interpreter on every kernel.\n")
	return b.String(), nil
}
