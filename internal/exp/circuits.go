package exp

import (
	"fmt"
	"strings"

	"ultrascalar/internal/analysis"
	"ultrascalar/internal/circuit"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/vlsi"
)

// E10: measured netlist depths for the circuits of Figures 1, 4, 5, 7 and
// 8, validating the paper's gate-delay claims from the actual generated
// gates rather than formulas.

// CircuitDepthRow is one circuit family at one size.
type CircuitDepthRow struct {
	N          int
	RingDepth  int // Figure 1 style, Θ(n)
	TreeDepth  int // Figure 4 style, Θ(log n)
	MixedDepth int // Section 5 mixed strategy (8-item blocks)
	GridLin    int // Figure 7 grid, Θ(n+L)
	GridTree   int // Figure 8 mesh of trees, Θ(log(n+L))
}

// CircuitDepths measures all five families for n in powers of two.
func CircuitDepths(l, nMin, nMax int) []CircuitDepthRow {
	var rows []CircuitDepthRow
	for n := nMin; n <= nMax; n *= 2 {
		row := CircuitDepthRow{N: n}
		row.RingDepth = circuit.RegisterCSPP(n, 2, false).Depth()
		row.TreeDepth = circuit.RegisterCSPP(n, 2, true).Depth()
		row.MixedDepth = mixedCSPPDepth(n)
		gl, _ := circuit.Ultra2Grid(n, l, 2, false)
		row.GridLin = gl.Depth()
		gt, _ := circuit.Ultra2Grid(n, l, 2, true)
		row.GridTree = gt.Depth()
		rows = append(rows, row)
	}
	return rows
}

// mixedCSPPDepth builds the Section 5 mixed-strategy register CSPP
// (balanced trees over 8-station blocks, linear across blocks) and
// measures its depth.
func mixedCSPPDepth(n int) int {
	c := circuit.New()
	items := make([]circuit.ScanItem, n)
	for i := range items {
		items[i] = circuit.ScanItem{Seg: c.NewInput(), Val: c.NewInputBus(2)}
	}
	for _, o := range circuit.BuildCSPPMixed(c, items, circuit.PassScanOp{W: 2}, 8) {
		c.OutputBus(o)
	}
	return c.Depth()
}

// CircuitDepthsReport renders E10.
func CircuitDepthsReport(l, nMin, nMax int) string {
	rows := CircuitDepths(l, nMin, nMax)
	var b strings.Builder
	fmt.Fprintf(&b, "E10: measured netlist depths (unit gate delays), L=%d\n\n", l)
	tab := analysis.NewTable("n", "mux ring (Fig 1)", "CSPP tree (Fig 4)",
		"mixed (Sec 5)", "grid linear (Fig 7)", "mesh-of-trees (Fig 8)")
	for _, r := range rows {
		tab.Row(r.N, r.RingDepth, r.TreeDepth, r.MixedDepth, r.GridLin, r.GridTree)
	}
	b.WriteString(tab.String())
	b.WriteString("\nRing and linear grid grow linearly; tree datapaths grow logarithmically,\nas the paper's Sections 2 and 4 claim.\n")
	return b.String()
}

// E7: three-dimensional packaging (Section 7).

// ThreeDReport renders the 3D volume/wire trends for the three designs.
func ThreeDReport(l int, ns []int) string {
	m := memory.MConst(1)
	var b strings.Builder
	fmt.Fprintf(&b, "E7 / Section 7: three-dimensional packaging (unit constants, L=%d)\n\n", l)
	tab := analysis.NewTable("n", "UltraI volume", "UltraII volume", "hybrid volume", "hybrid C (3D)")
	for _, n := range ns {
		u1 := vlsi.UltraI3D(n, l, m)
		u2 := vlsi.UltraII3D(n, l, m)
		hy := vlsi.Hybrid3D(n, l, m)
		tab.Row(n, u1.Volume, u2.Volume, hy.Volume, hy.Cluster)
	}
	b.WriteString(tab.String())
	b.WriteString("\nPaper: UltraI volume nL^{3/2}; UltraII O(n^2+L^2); hybrid O(nL^{3/4})\nwith optimal 3D cluster size Th(L^{3/4}).\n")
	return b.String()
}
