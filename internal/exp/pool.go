package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The experiment sweeps — (arch × workload × n) simulation points and
// (arch × regime × n) layout points — are embarrassingly parallel: every
// point builds its own engine and model, and the only shared inputs
// (programs, technology constants) are read-only. parMap fans the points
// out across a bounded worker pool while keeping results (and error
// selection) deterministic, so a parallel sweep is byte-identical to a
// serial one.

// sweepWorkers holds the configured worker count; 0 means GOMAXPROCS.
var sweepWorkers atomic.Int32

// SetSweepWorkers sets the number of goroutines experiment sweeps fan out
// over. n <= 0 restores the default, runtime.GOMAXPROCS(0). It returns
// the previous setting. SetSweepWorkers(1) forces fully serial sweeps.
func SetSweepWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(sweepWorkers.Swap(int32(n)))
}

// SweepWorkers returns the effective worker count for sweeps.
func SweepWorkers() int {
	if n := int(sweepWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// parMap applies f to every item across SweepWorkers goroutines and
// returns the results in item order. Determinism: results[i] depends only
// on items[i], and when any calls fail the error reported is the one with
// the lowest index — the same error a serial loop would have returned
// first — so callers cannot observe the scheduling.
func parMap[T, R any](items []T, f func(T) (R, error)) ([]R, error) {
	n := len(items)
	results := make([]R, n)
	workers := SweepWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, it := range items {
			r, err := f(it)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = f(items[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
