package exp

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"ultrascalar/internal/obs"
)

// The experiment sweeps — (arch × workload × n) simulation points and
// (arch × regime × n) layout points — are embarrassingly parallel: every
// point builds its own engine and model, and the only shared inputs
// (programs, technology constants) are read-only. parMap fans the points
// out across a bounded worker pool while keeping results (and error
// selection) deterministic, so a parallel sweep is byte-identical to a
// serial one.

// sweepWorkers holds the configured worker count; 0 means GOMAXPROCS.
var sweepWorkers atomic.Int32

// SetSweepWorkers sets the number of goroutines experiment sweeps fan out
// over. n <= 0 restores the default, runtime.GOMAXPROCS(0). It returns
// the previous setting. SetSweepWorkers(1) forces fully serial sweeps.
func SetSweepWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(sweepWorkers.Swap(int32(n)))
}

// SweepWorkers returns the effective worker count for sweeps.
func SweepWorkers() int {
	if n := int(sweepWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// sweepCtx holds the context bounding sweeps whose entry points predate
// context plumbing (the IPC/locality/layout sweeps); nil means
// unbounded. Like the worker-count and metrics knobs it is package
// state so existing sweep signatures stay unchanged.
var sweepCtx atomic.Pointer[context.Context]

// SetSweepContext bounds every subsequent sweep by ctx: once ctx is
// canceled, in-flight sweep points finish but no new points start, and
// the sweep returns ctx's error. Pass nil to restore unbounded sweeps.
// It returns the previous context (nil if none was set). Cancellation
// does not perturb determinism: a sweep either completes with the usual
// byte-identical results or fails with the context error.
func SetSweepContext(ctx context.Context) context.Context {
	var prev *context.Context
	if ctx == nil {
		prev = sweepCtx.Swap(nil)
	} else {
		prev = sweepCtx.Swap(&ctx)
	}
	if prev == nil {
		return nil
	}
	return *prev
}

// sweepContext resolves the package-level sweep context; nil when
// unbounded.
func sweepContext() context.Context {
	if p := sweepCtx.Load(); p != nil {
		return *p
	}
	return nil
}

// poolMetrics holds the registry the worker pool reports into; nil (the
// default) disables instrumentation entirely. Metrics are a side
// channel: they never influence scheduling or results, so the
// byte-identical-sweep contract is unaffected.
var poolMetrics atomic.Pointer[obs.Registry]

// SetPoolMetrics wires a metrics registry into every subsequent sweep:
// per-task wall time (exp.task_ms histogram), task and batch counters,
// worker count, queue depth at task start, and per-batch worker
// utilization (busy time / workers x wall time). Pass nil to disable.
func SetPoolMetrics(r *obs.Registry) { poolMetrics.Store(r) }

// taskMsBounds are the exp.task_ms histogram bucket upper bounds: sweep
// points range from sub-millisecond layout evaluations to multi-second
// large-window simulations.
var taskMsBounds = []float64{0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000, 3000, 10000}

// poolInstruments is the resolved set of instruments for one batch.
type poolInstruments struct {
	reg     *obs.Registry
	taskMs  *obs.Histogram
	depth   *obs.Histogram
	tasks   *obs.Counter
	batches *obs.Counter
	workers *obs.Gauge
	util    *obs.Gauge
	busyNs  atomic.Int64
}

// instruments resolves the batch's instruments, or nil when metrics are
// off.
func instruments() *poolInstruments {
	reg := poolMetrics.Load()
	if reg == nil {
		return nil
	}
	return &poolInstruments{
		reg:     reg,
		taskMs:  reg.Histogram("exp.task_ms", taskMsBounds),
		depth:   reg.Histogram("exp.queue_depth", []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}),
		tasks:   reg.Counter("exp.tasks"),
		batches: reg.Counter("exp.batches"),
		workers: reg.Gauge("exp.workers"),
		util:    reg.Gauge("exp.utilization"),
	}
}

// observeTask wraps one task call with wall-time accounting. queued is
// the number of tasks still waiting when this one started.
func observeTask[T, R any](ins *poolInstruments, f func(T) (R, error), item T, queued int) (R, error) {
	if ins == nil {
		return f(item)
	}
	ins.depth.Observe(float64(queued))
	start := time.Now() //uslint:allow detorder -- observability side channel; never feeds sweep results
	r, err := f(item)
	d := time.Since(start)
	ins.busyNs.Add(d.Nanoseconds())
	ins.taskMs.Observe(float64(d.Nanoseconds()) / 1e6)
	ins.tasks.Inc()
	return r, err
}

// finishBatch publishes the batch-level gauges and takes one registry
// snapshot, ticked by the cumulative task count.
func (ins *poolInstruments) finishBatch(workers int, wall time.Duration) {
	if ins == nil {
		return
	}
	ins.batches.Inc()
	ins.workers.Set(float64(workers))
	util := 0.0
	if wall > 0 && workers > 0 {
		util = float64(ins.busyNs.Load()) / (float64(workers) * float64(wall.Nanoseconds()))
	}
	ins.util.Set(util)
	ins.reg.Snapshot(ins.tasks.Value())
}

// PanicError is a worker-pool task panic converted into an error: which
// sweep point blew up, the panic value, and the goroutine stack captured
// at the point of failure. The pool recovers every task panic so one
// broken point cannot take down the whole experiment process — the
// remaining points still run to completion, and the batch reports this
// structured error instead of crashing.
type PanicError struct {
	Index int    // item index within the batch
	Value any    // the recovered panic value
	Stack []byte // goroutine stack at recovery
}

// Error renders the panic with its stack, so a sweep failure in CI or a
// long campaign log is immediately attributable.
func (p *PanicError) Error() string {
	return fmt.Sprintf("exp: sweep task %d panicked: %v\n%s", p.Index, p.Value, p.Stack)
}

// safeTask invokes one task with panic recovery: a panicking task yields
// a *PanicError for its index and the batch carries on.
func safeTask[T, R any](ins *poolInstruments, f func(T) (R, error), item T, i, queued int) (r R, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	return observeTask(ins, f, item, queued)
}

// parMap applies f to every item across SweepWorkers goroutines and
// returns the results in item order. Determinism: results[i] depends only
// on items[i], every item runs regardless of other items' failures, and
// when any calls fail the error reported is the one with the lowest
// index — so callers cannot observe the scheduling, and a serial sweep
// (SetSweepWorkers(1)) is indistinguishable from a parallel one. Task
// panics are recovered into *PanicError rather than crashing the batch.
// The batch is bounded by the SetSweepContext context, if any.
func parMap[T, R any](items []T, f func(T) (R, error)) ([]R, error) {
	return parMapCtx(sweepContext(), items, f)
}

// parMapCtx is parMap bounded by ctx: each item's slot checks ctx
// before running, so a canceled batch stops claiming work — items
// already running finish (their results are simply discarded), items
// not yet started record ctx's error instead of running. The
// lowest-index error rule still applies, so whether the caller sees a
// task error or the cancellation is deterministic given which items
// completed. A nil ctx disables the check entirely.
func parMapCtx[T, R any](ctx context.Context, items []T, f func(T) (R, error)) ([]R, error) {
	n := len(items)
	results := make([]R, n)
	errs := make([]error, n)
	ins := instruments()
	runOne := func(i int) {
		if ctx != nil && ctx.Err() != nil {
			errs[i] = ctx.Err()
			return
		}
		results[i], errs[i] = safeTask(ins, f, items[i], i, n-1-i)
	}
	workers := SweepWorkers()
	if workers > n {
		workers = n
	}
	start := time.Now() //uslint:allow detorder -- observability side channel; never feeds sweep results
	if workers <= 1 {
		for i := range items {
			runOne(i)
		}
		ins.finishBatch(1, time.Since(start))
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					runOne(i)
				}
			}()
		}
		wg.Wait()
		ins.finishBatch(workers, time.Since(start))
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
