package exp

import (
	"strings"
	"testing"

	"ultrascalar/internal/core"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/workload"
)

func TestTimelineArt(t *testing.T) {
	w := workload.Figure3Sequence()
	res, err := core.Run(w.Prog, memory.NewFlat(), core.Config{
		Window: 8, Granularity: 1, KeepTimeline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	art := TimelineArt(res.Timeline, 0)
	if !strings.Contains(art, "##########") {
		t.Errorf("missing the 10-cycle divide bar:\n%s", art)
	}
	if !strings.Contains(art, "div r3, r1, r2") {
		t.Errorf("missing instruction text:\n%s", art)
	}
	lines := strings.Count(art, "\n")
	if lines != 9 { // 8 instructions + halt
		t.Errorf("art has %d rows, want 9:\n%s", lines, art)
	}
}

func TestTimelineArtEmptyAndCapped(t *testing.T) {
	if got := TimelineArt(nil, 0); !strings.Contains(got, "empty") {
		t.Errorf("empty art = %q", got)
	}
	recs := make([]core.InstRecord, 100)
	for i := range recs {
		recs[i] = core.InstRecord{Seq: int64(i), Inst: isa.Inst{Op: isa.OpNop},
			Issue: int64(i), Done: int64(i + 1)}
	}
	art := TimelineArt(recs, 10)
	if strings.Count(art, "\n") != 10 {
		t.Errorf("cap not applied: %d rows", strings.Count(art, "\n"))
	}
	// Long spans get scaled columns.
	long := []core.InstRecord{
		{Seq: 0, Inst: isa.Inst{Op: isa.OpNop}, Issue: 0, Done: 1},
		{Seq: 1, Inst: isa.Inst{Op: isa.OpNop}, Issue: 500, Done: 501},
	}
	scaled := TimelineArt(long, 0)
	if !strings.Contains(scaled, "each column") {
		t.Errorf("long span should scale:\n%s", scaled)
	}
	// Long mnemonics truncate.
	if truncate("abcdefghij", 5) != "abcd~" {
		t.Error("truncate wrong")
	}
}
