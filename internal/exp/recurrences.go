package exp

import (
	"fmt"
	"math"
	"strings"

	"ultrascalar/internal/analysis"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/vlsi"
)

// E4: the Ultrascalar I side-length recurrence of Section 3 (Figure 6).
// The constructive floorplan and the abstract recurrence
// X(n) = 2X(n/4) + Θ(L) + Θ(M(n)) must exhibit the same growth, case by
// case in M(n).

// RecurrenceRow compares constructive and abstract growth in one regime.
type RecurrenceRow struct {
	Regime        string
	ModelExp      float64 // fitted exponent of the constructive model
	RecurrenceExp float64 // fitted exponent of the abstract recurrence
	PaperCase     string
}

// UltraIRecurrence sweeps n (powers of 4) and fits both growth rates.
func UltraIRecurrence(l, w, nMin, nMax int, t vlsi.Tech) ([]RecurrenceRow, error) {
	cases := []struct {
		regime    string
		m         memory.MFunc
		paperCase string
	}{
		{"M(n)=O(n^1/2-e)", memory.MPow(1, 0.25), "Case 1: X(n)=Th(sqrt(n)L)"},
		{"M(n)=Th(n^1/2)", memory.MPow(1, 0.5), "Case 2: X(n)=Th(sqrt(n)(L+log n))"},
		{"M(n)=Om(n^1/2+e)", memory.MPow(1, 0.75), "Case 3: X(n)=Th(sqrt(n)L+M(n))"},
		{"M(n)=Th(n)", memory.MLinear(), "Case 3 extreme: X(n)=Th(n)"},
	}
	var rows []RecurrenceRow
	for _, c := range cases {
		var ns, sides, recs []float64
		for n := nMin; n <= nMax; n *= 4 {
			md, err := vlsi.UltraIModel(n, l, w, c.m, t, vlsi.UltraIOptions{})
			if err != nil {
				return nil, err
			}
			ns = append(ns, float64(n))
			sides = append(sides, math.Sqrt(md.AreaL2()))
			recs = append(recs, vlsi.XRecurrence(n, l, c.m, 1, 1))
		}
		fitM, err := analysis.FitPower(ns, sides)
		if err != nil {
			return nil, err
		}
		fitR, err := analysis.FitPower(ns, recs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, RecurrenceRow{
			Regime: c.regime, ModelExp: fitM.Exponent,
			RecurrenceExp: fitR.Exponent, PaperCase: c.paperCase,
		})
	}
	return rows, nil
}

// UltraIRecurrenceReport renders E4.
func UltraIRecurrenceReport(l, w, nMin, nMax int, t vlsi.Tech) (string, error) {
	rows, err := UltraIRecurrence(l, w, nMin, nMax, t)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 / Section 3: X(n) recurrence, L=%d, n in [%d,%d]\n\n", l, nMin, nMax)
	tab := analysis.NewTable("regime", "floorplan exp", "recurrence exp", "paper solution")
	for _, r := range rows {
		tab.Row(r.Regime, r.ModelExp, r.RecurrenceExp, r.PaperCase)
	}
	b.WriteString(tab.String())
	return b.String(), nil
}

// E5: the Ultrascalar II side and gate-delay comparison across its three
// implementations (Figures 7-8 and the mixed strategy of Section 5).

// Ultra2Row is one sweep point of E5.
type Ultra2Row struct {
	N                           int
	SideLin, SideLog, SideMixed float64
	GateLin, GateLog, GateMixed int
}

// Ultra2Scaling sweeps n (powers of 2), one sweep-pool task per n.
func Ultra2Scaling(l, w, nMin, nMax int, t vlsi.Tech) ([]Ultra2Row, error) {
	m := memory.MPow(1, 0.5)
	var ns []int
	for n := nMin; n <= nMax; n *= 2 {
		ns = append(ns, n)
	}
	return parMap(ns, func(n int) (Ultra2Row, error) {
		lin, err := vlsi.Ultra2Model(n, l, w, m, t, vlsi.Ultra2Linear)
		if err != nil {
			return Ultra2Row{}, err
		}
		lg, err := vlsi.Ultra2Model(n, l, w, m, t, vlsi.Ultra2Tree)
		if err != nil {
			return Ultra2Row{}, err
		}
		mx, err := vlsi.Ultra2Model(n, l, w, m, t, vlsi.Ultra2Mixed)
		if err != nil {
			return Ultra2Row{}, err
		}
		return Ultra2Row{
			N: n, SideLin: lin.SideL(), SideLog: lg.SideL(), SideMixed: mx.SideL(),
			GateLin: lin.GateDelay, GateLog: lg.GateDelay, GateMixed: mx.GateDelay,
		}, nil
	})
}

// Ultra2ScalingReport renders E5.
func Ultra2ScalingReport(l, w, nMin, nMax int, t vlsi.Tech) (string, error) {
	rows, err := Ultra2Scaling(l, w, nMin, nMax, t)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figures 7-8 / Section 5: Ultrascalar II implementations, L=%d\n\n", l)
	tab := analysis.NewTable("n", "side lin (cm)", "side log (cm)", "side mixed (cm)",
		"gates lin", "gates log", "gates mixed")
	for _, r := range rows {
		tab.Row(r.N, t.CM(r.SideLin), t.CM(r.SideLog), t.CM(r.SideMixed),
			r.GateLin, r.GateLog, r.GateMixed)
	}
	b.WriteString(tab.String())
	b.WriteString("\nThe mixed strategy keeps the linear side with near-log gate delay\n(paper: 'exactly the same as for the linear-time circuit ... with\ngreatly improved constant factors').\n")
	return b.String(), nil
}

// E6: the hybrid cluster-size sweep of Section 6 — side length minimized
// at C = Θ(L).

// ClusterSweepRow is one cluster size's resulting layout.
type ClusterSweepRow struct {
	C    int
	Side float64 // sqrt(area), λ
}

// ClusterSweep returns the sweep and the arg-min cluster size. The
// cluster sizes fan out across the sweep pool; the arg-min is taken over
// the ordered results, so ties resolve to the smallest C as before.
func ClusterSweep(n, l, w int, t vlsi.Tech) ([]ClusterSweepRow, int, error) {
	m := memory.MConst(1)
	var cs []int
	for c := 1; c <= n; c *= 2 {
		if (n/c)&(n/c-1) != 0 {
			continue
		}
		cs = append(cs, c)
	}
	rows, err := parMap(cs, func(c int) (ClusterSweepRow, error) {
		md, err := vlsi.HybridModel(n, c, l, w, m, t, vlsi.Ultra2Linear)
		if err != nil {
			return ClusterSweepRow{}, err
		}
		return ClusterSweepRow{C: c, Side: math.Sqrt(md.AreaL2())}, nil
	})
	if err != nil {
		return nil, 0, err
	}
	bestC, best := 0, math.Inf(1)
	for _, r := range rows {
		if r.Side < best {
			best, bestC = r.Side, r.C
		}
	}
	return rows, bestC, nil
}

// ClusterSweepReport renders E6 for several register counts.
func ClusterSweepReport(n, w int, t vlsi.Tech) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 6 / Figure 10: optimal cluster size, n=%d\n\n", n)
	for _, l := range []int{8, 32, 64} {
		rows, bestC, err := ClusterSweep(n, l, w, t)
		if err != nil {
			return "", err
		}
		tab := analysis.NewTable("C", "sqrt(area) (cm)", "")
		for _, r := range rows {
			mark := ""
			if r.C == bestC {
				mark = "<- min"
			}
			tab.Row(r.C, t.CM(r.Side), mark)
		}
		fmt.Fprintf(&b, "L=%d (paper: optimum at C=Th(L); found C=%d)\n%s\n", l, bestC, tab.String())
	}
	return b.String(), nil
}
