package exp

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ultrascalar/internal/fault"
	obslog "ultrascalar/internal/obs/log"
	"ultrascalar/internal/workload"
)

// testCampaign is a small-but-real campaign: all three architectures,
// one kernel, three sites spanning value/protocol/starvation faults.
func testCampaign() FaultCampaignConfig {
	return FaultCampaignConfig{
		Seed:   1,
		Window: 8,
		N:      6,
		Sites: []fault.Site{
			fault.SiteResultBit, fault.SiteDropForward, fault.SiteReadyStuck0,
		},
		Detect:    fault.DetectGolden,
		Workloads: []workload.Workload{workload.Fib(8)},
	}
}

func renderReport(t *testing.T, rep *fault.Report) string {
	t.Helper()
	var b strings.Builder
	if err := rep.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestFaultCampaignDeterministic: the same campaign configuration yields
// a byte-identical report whether the points run serially or fanned out
// across the worker pool — the acceptance contract for usfault.
func TestFaultCampaignDeterministic(t *testing.T) {
	cfg := testCampaign()

	prev := SetSweepWorkers(1)
	serialRep, err := RunFaultCampaign(cfg)
	if err != nil {
		SetSweepWorkers(prev)
		t.Fatalf("serial campaign: %v", err)
	}
	SetSweepWorkers(8)
	parallelRep, err := RunFaultCampaign(cfg)
	SetSweepWorkers(prev)
	if err != nil {
		t.Fatalf("parallel campaign: %v", err)
	}

	serial := renderReport(t, serialRep)
	parallel := renderReport(t, parallelRep)
	if serial != parallel {
		t.Errorf("parallel report diverges from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}

	// The campaign must have produced real work: every cell populated,
	// and with the golden checker on, detections recover rather than
	// corrupt or fail.
	if len(serialRep.Cells) != 3*1*3 {
		t.Fatalf("got %d cells, want %d", len(serialRep.Cells), 9)
	}
	detected := 0
	for _, c := range serialRep.Cells {
		if c.Points != cfg.N {
			t.Errorf("cell %s/%s has %d points, want %d", c.Arch, c.Site, c.Points, cfg.N)
		}
		if c.SDC != 0 || c.RecFailed != 0 {
			t.Errorf("cell %s/%s: sdc=%d recovery-failed=%d under golden detection",
				c.Arch, c.Site, c.SDC, c.RecFailed)
		}
		detected += c.Detected
	}
	if detected == 0 {
		t.Error("campaign detected no faults at all; injection is not reaching live state")
	}
}

// TestFaultCampaignCheckpointResume: interrupting a campaign and
// restarting it with the same checkpoint file skips the completed shards
// and still produces the byte-identical report.
func TestFaultCampaignCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	cfg := testCampaign()

	full, err := RunFaultCampaign(cfg)
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	want := renderReport(t, full)

	// First pass writes a checkpoint; simulate an interruption by
	// truncating the file to its header plus the first few shard lines.
	cfg.Checkpoint = filepath.Join(dir, "campaign.ckpt")
	if _, err := RunFaultCampaign(cfg); err != nil {
		t.Fatalf("checkpointed campaign: %v", err)
	}
	data, err := os.ReadFile(cfg.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 5 {
		t.Fatalf("checkpoint has %d lines, want header + 9 shards", len(lines))
	}
	kept := 4 // header + 3 completed shards
	if err := os.WriteFile(cfg.Checkpoint, []byte(strings.Join(lines[:kept], "")), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := RunFaultCampaign(cfg)
	if err != nil {
		t.Fatalf("resumed campaign: %v", err)
	}
	if resumed.Resumed != kept-1 {
		t.Errorf("resumed %d shards, want %d", resumed.Resumed, kept-1)
	}
	// The resumed-shard count is invocation metadata; the campaign
	// results themselves must be byte-identical.
	resumed.Resumed = 0
	if got := renderReport(t, resumed); got != want {
		t.Errorf("resumed report diverges from uninterrupted run:\n--- want ---\n%s--- got ---\n%s", want, got)
	}

	// The finished checkpoint now holds every shard; a fresh run against
	// it does no simulation work and reproduces the report again.
	cached, err := RunFaultCampaign(cfg)
	if err != nil {
		t.Fatalf("fully-cached campaign: %v", err)
	}
	if cached.Resumed != cached.Shards {
		t.Errorf("cached run resumed %d of %d shards", cached.Resumed, cached.Shards)
	}
	cached.Resumed = 0
	if got := renderReport(t, cached); got != want {
		t.Error("fully-cached report diverges from uninterrupted run")
	}
}

// TestFaultCampaignCheckpointMismatch: a checkpoint written by a
// differently-configured campaign must be rejected, not silently mixed
// into the results.
func TestFaultCampaignCheckpointMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := testCampaign()
	cfg.Checkpoint = filepath.Join(dir, "campaign.ckpt")
	if _, err := RunFaultCampaign(cfg); err != nil {
		t.Fatalf("first campaign: %v", err)
	}
	cfg.Seed = 2
	if _, err := RunFaultCampaign(cfg); err == nil {
		t.Fatal("campaign with a different seed accepted a stale checkpoint")
	} else if !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("unexpected mismatch error: %v", err)
	}
}

// TestFaultCampaignValidation: bad configurations fail fast with clear
// errors instead of producing empty reports.
func TestFaultCampaignValidation(t *testing.T) {
	if _, err := RunFaultCampaign(FaultCampaignConfig{Window: 0, N: 1}); err == nil {
		t.Error("window 0 accepted")
	}
	if _, err := RunFaultCampaign(FaultCampaignConfig{Window: 8, N: 0}); err == nil {
		t.Error("n 0 accepted")
	}
	cfg := testCampaign()
	cfg.Archs = []string{"ultra3"}
	if _, err := RunFaultCampaign(cfg); err == nil {
		t.Error("unknown architecture accepted")
	}
}

// TestFaultCampaignProgressAndTelemetry: the Progress callback reports
// a monotonic shard count from (0, total) to (total, total), a
// context-carried logger and span recorder observe every shard under
// one trace ID, and none of it changes a byte of the report.
func TestFaultCampaignProgressAndTelemetry(t *testing.T) {
	cfg := testCampaign()
	plain, err := RunFaultCampaign(cfg)
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	want := renderReport(t, plain)

	type call struct{ done, total int }
	var mu sync.Mutex
	var calls []call
	cfg.Progress = func(done, total int) {
		mu.Lock()
		calls = append(calls, call{done, total})
		mu.Unlock()
	}

	var logBuf bytes.Buffer
	lg := obslog.New(&logBuf, obslog.Options{Level: obslog.LevelDebug})
	rec := obslog.NewSpanRecorder(obslog.SpanOptions{})
	trace := obslog.DeriveTraceID("job-000042")
	ctx := obslog.WithLogger(obslog.WithRecorder(obslog.WithTraceID(context.Background(), trace), rec), lg)

	traced, err := RunFaultCampaignCtx(ctx, cfg)
	if err != nil {
		t.Fatalf("traced campaign: %v", err)
	}
	if got := renderReport(t, traced); got != want {
		t.Errorf("telemetry changed the report bytes:\n--- want ---\n%s--- got ---\n%s", want, got)
	}

	if len(calls) == 0 {
		t.Fatal("Progress never called")
	}
	total := calls[0].total
	if calls[0].done != 0 || total == 0 {
		t.Fatalf("first Progress call = %+v, want (0, total>0)", calls[0])
	}
	prev := -1
	for _, c := range calls {
		if c.total != total {
			t.Fatalf("Progress total changed mid-campaign: %+v", c)
		}
		if c.done <= prev {
			t.Fatalf("Progress not monotonic: %d after %d", c.done, prev)
		}
		prev = c.done
	}
	if last := calls[len(calls)-1]; last.done != total {
		t.Errorf("final Progress call = %+v, want done == total", last)
	}

	shardSpans := 0
	for _, ev := range rec.Events(trace) {
		if ev.Name == "shard" {
			shardSpans++
		}
	}
	if shardSpans != total {
		t.Errorf("%d shard spans on the trace, want %d", shardSpans, total)
	}
	for _, msg := range []string{"campaign start", "campaign done"} {
		if !strings.Contains(logBuf.String(), `"msg":"`+msg+`"`) {
			t.Errorf("log missing %q", msg)
		}
	}
	if !strings.Contains(logBuf.String(), `"trace":"`+string(trace)+`"`) {
		t.Error("log lines do not carry the campaign trace ID")
	}
}

// TestFaultCampaignCheckpointOversizedLine: a checkpoint whose shard
// record exceeds bufio.Scanner's default 64 KiB token cap must still
// load (JSON tolerates whitespace between tokens, so a record is
// inflated without changing its meaning). Before the shared big-buffer
// scanner this failed with "token too long" and a valid checkpoint
// became unreadable.
func TestFaultCampaignCheckpointOversizedLine(t *testing.T) {
	dir := t.TempDir()
	cfg := testCampaign()
	cfg.Checkpoint = filepath.Join(dir, "campaign.ckpt")
	full, err := RunFaultCampaign(cfg)
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	want := renderReport(t, full)

	data, err := os.ReadFile(cfg.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("checkpoint has %d lines, want header + shards", len(lines))
	}
	// Inflate the first shard record past the default scanner cap.
	fat := strings.Replace(lines[1], `{"shard":`, `{`+strings.Repeat(" ", 96*1024)+`"shard":`, 1)
	if len(fat) <= 64*1024 {
		t.Fatalf("inflated line only %d bytes", len(fat))
	}
	lines[1] = fat
	if err := os.WriteFile(cfg.Checkpoint, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := RunFaultCampaign(cfg)
	if err != nil {
		t.Fatalf("campaign with oversized checkpoint line: %v", err)
	}
	if resumed.Resumed != resumed.Shards {
		t.Errorf("resumed %d of %d shards; the oversized record was dropped instead of read",
			resumed.Resumed, resumed.Shards)
	}
	resumed.Resumed = 0
	if got := renderReport(t, resumed); got != want {
		t.Error("report after oversized-line resume diverges from reference")
	}
}
