package exp

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// countdownCtx is a deterministic context for cancellation tests: Err
// reports Canceled starting with its fire-th call. With the sweep pool
// forced serial, the probe sequence — and therefore the exact point the
// campaign stops — is reproducible.
type countdownCtx struct {
	calls, fire int
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(key any) any           { return nil }
func (c *countdownCtx) Err() error {
	c.calls++
	if c.calls >= c.fire {
		return context.Canceled
	}
	return nil
}

// TestCheckpointTornTailTolerated: a crash can tear the checkpoint's
// final line mid-write. On resume the torn tail must be detected and
// dropped — that shard reruns — and the finished report must still be
// byte-identical to an uninterrupted campaign.
func TestCheckpointTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	cfg := testCampaign()

	full, err := RunFaultCampaign(cfg)
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	want := renderReport(t, full)

	cfg.Checkpoint = filepath.Join(dir, "campaign.ckpt")
	if _, err := RunFaultCampaign(cfg); err != nil {
		t.Fatalf("checkpointed campaign: %v", err)
	}
	data, err := os.ReadFile(cfg.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	shards := strings.Count(string(data), "\n") - 1 // minus the header
	// Tear the tail mid-line: drop the trailing newline and the last few
	// bytes of the final shard record, leaving unparsable JSON.
	torn := data[:len(data)-5]
	if err := os.WriteFile(cfg.Checkpoint, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := RunFaultCampaign(cfg)
	if err != nil {
		t.Fatalf("resume over a torn tail failed: %v", err)
	}
	if resumed.Resumed != shards-1 {
		t.Errorf("resumed %d shards, want %d (torn final shard must rerun)", resumed.Resumed, shards-1)
	}
	resumed.Resumed = 0
	if got := renderReport(t, resumed); got != want {
		t.Errorf("report after torn-tail resume diverges:\n--- want ---\n%s--- got ---\n%s", want, got)
	}

	// The resume rewrote the file; a second resume must find every shard
	// complete and parse cleanly end to end.
	cached, err := RunFaultCampaign(cfg)
	if err != nil {
		t.Fatalf("second resume: %v", err)
	}
	if cached.Resumed != shards {
		t.Errorf("second resume found %d shards, want %d", cached.Resumed, shards)
	}
}

// TestCheckpointMidFileCorruptionFails: only the LAST line may be torn
// (a crash tears at most the line being written). Corruption anywhere
// else cannot be explained by a torn tail and must fail loudly instead
// of silently dropping completed work.
func TestCheckpointMidFileCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	cfg := testCampaign()
	cfg.Checkpoint = filepath.Join(dir, "campaign.ckpt")
	if _, err := RunFaultCampaign(cfg); err != nil {
		t.Fatalf("checkpointed campaign: %v", err)
	}
	data, err := os.ReadFile(cfg.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 4 {
		t.Fatalf("checkpoint has only %d lines", len(lines))
	}
	lines[2] = `{"shard": %% flipped bits %%`
	if err := os.WriteFile(cfg.Checkpoint, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RunFaultCampaign(cfg); err == nil {
		t.Fatal("campaign accepted a checkpoint with a corrupt interior line")
	} else if !strings.Contains(err.Error(), "corrupt checkpoint line") {
		t.Fatalf("unexpected error for interior corruption: %v", err)
	}
}

// TestCampaignPreCanceledContext: an already-canceled context stops the
// campaign before any shard runs, the error unwraps to context.Canceled,
// and the checkpoint is left valid — a later run with a live context
// completes and reports byte-identically.
func TestCampaignPreCanceledContext(t *testing.T) {
	dir := t.TempDir()
	cfg := testCampaign()

	full, err := RunFaultCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := renderReport(t, full)

	cfg.Checkpoint = filepath.Join(dir, "campaign.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = RunFaultCampaignCtx(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want an error wrapping context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "stopped after 0/") {
		t.Errorf("error %q does not report zero completed shards", err)
	}

	resumed, err := RunFaultCampaignCtx(nil, cfg)
	if err != nil {
		t.Fatalf("campaign after canceled attempt: %v", err)
	}
	resumed.Resumed = 0
	if got := renderReport(t, resumed); got != want {
		t.Error("report after a canceled-then-restarted campaign diverges")
	}
}

// TestCampaignCanceledMidwayCheckpointsAndResumes: a cancellation firing
// partway through a serial campaign must stop it with some shards done
// and some not, persist exactly the finished shards, and resume to the
// byte-identical report.
func TestCampaignCanceledMidwayCheckpointsAndResumes(t *testing.T) {
	dir := t.TempDir()
	cfg := testCampaign()

	full, err := RunFaultCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := renderReport(t, full)
	totalShards := full.Shards

	prev := SetSweepWorkers(1) // deterministic probe sequence
	cfg.Checkpoint = filepath.Join(dir, "campaign.ckpt")
	_, err = RunFaultCampaignCtx(&countdownCtx{fire: 20}, cfg)
	SetSweepWorkers(prev)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want an error wrapping context.Canceled", err)
	}

	resumed, err := RunFaultCampaignCtx(context.Background(), cfg)
	if err != nil {
		t.Fatalf("resume after midway cancel: %v", err)
	}
	if resumed.Resumed == 0 || resumed.Resumed >= totalShards {
		t.Errorf("resumed %d of %d shards; the cancellation did not land midway", resumed.Resumed, totalShards)
	}
	resumed.Resumed = 0
	if got := renderReport(t, resumed); got != want {
		t.Errorf("report after midway-cancel resume diverges:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}
