// Package exp regenerates every table and figure of the paper's
// evaluation. Each experiment returns structured data plus a rendered
// text report; the top-level benchmarks (bench_test.go) and the cmd/
// tools drive these functions. EXPERIMENTS.md records paper-versus-
// measured for each artifact.
package exp

import (
	"fmt"
	"strings"

	"ultrascalar/internal/core"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/workload"
)

// Figure3Row is one instruction's timing in the Figure 3 diagram.
type Figure3Row struct {
	Inst  isa.Inst
	Issue int64
	Done  int64 // exclusive
}

// Figure3 reproduces the paper's Figure 3: the relative time during which
// each instruction of the Figure 1 sequence executes, on an 8-station
// Ultrascalar I with div=10, mul=3, add=1.
func Figure3() ([]Figure3Row, error) {
	w := workload.Figure3Sequence()
	init := make([]isa.Word, isa.NumRegs)
	init[0], init[1], init[2] = 10, 100, 5
	init[4], init[5], init[6], init[7] = 3, 50, 8, 2
	res, err := core.Run(w.Prog, memory.NewFlat(), core.Config{
		Window: 8, Granularity: 1, InitRegs: init, KeepTimeline: true,
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Figure3Row, 0, 8)
	for _, rec := range res.Timeline {
		if rec.Inst.IsHalt() {
			break
		}
		rows = append(rows, Figure3Row{Inst: rec.Inst, Issue: rec.Issue, Done: rec.Done})
	}
	return rows, nil
}

// Figure3Report renders the timing diagram as ASCII art in the style of
// the paper's Figure 3.
func Figure3Report() (string, error) {
	rows, err := Figure3()
	if err != nil {
		return "", err
	}
	var maxDone int64
	for _, r := range rows {
		if r.Done > maxDone {
			maxDone = r.Done
		}
	}
	var b strings.Builder
	b.WriteString("Figure 3: relative execution time of the Figure 1 sequence\n")
	b.WriteString("(div=10, mul=3, add=1 cycles; 8-station Ultrascalar I)\n\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s |", r.Inst)
		for c := int64(0); c < maxDone; c++ {
			switch {
			case c >= r.Issue && c < r.Done:
				b.WriteByte('#')
			default:
				b.WriteByte('.')
			}
		}
		fmt.Fprintf(&b, "|  [%d,%d)\n", r.Issue, r.Done)
	}
	fmt.Fprintf(&b, "%-16s  ", "")
	for c := int64(0); c <= maxDone; c += 2 {
		fmt.Fprintf(&b, "%-2d", c)
	}
	b.WriteByte('\n')
	return b.String(), nil
}
