package exp

import (
	"fmt"
	"strings"

	"ultrascalar/internal/analysis"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/vlsi"
)

// Figure12Result is the empirical layout comparison of the paper's
// Section 7 / Figure 12: a 64-station Ultrascalar I register datapath
// versus a 128-station 4-cluster hybrid, both with 32 32-bit registers in
// 0.35 µm CMOS.
type Figure12Result struct {
	UltraI, Hybrid *vlsi.Model
	// DensityRatio is hybrid stations-per-area over Ultrascalar I
	// stations-per-area; the paper reports about 11.5 (13,000 versus
	// 150,000 processors per square meter).
	DensityRatio float64
}

// Figure12 builds both layouts with the paper's parameters.
func Figure12(t vlsi.Tech) (*Figure12Result, error) {
	m := memory.MConst(1) // the paper "left space ... for a small datapath of size M(n) = O(1)"
	u1, err := vlsi.UltraIModel(64, 32, 32, m, t, vlsi.UltraIOptions{})
	if err != nil {
		return nil, err
	}
	hy, err := vlsi.HybridModel(128, 32, 32, 32, m, t, vlsi.Ultra2Linear)
	if err != nil {
		return nil, err
	}
	return &Figure12Result{
		UltraI:       u1,
		Hybrid:       hy,
		DensityRatio: hy.DensityPerM2(t) / u1.DensityPerM2(t),
	}, nil
}

// Figure12Report renders the comparison with the paper's reported numbers
// alongside.
func Figure12Report(t vlsi.Tech) (string, error) {
	r, err := Figure12(t)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 12: empirical layout comparison (0.35um, 3 metal, L=32, W=32)\n\n")
	tab := analysis.NewTable("layout", "stations", "size (cm)", "stations/m^2", "paper")
	tab.Row("Ultrascalar I", 64,
		fmt.Sprintf("%.2f x %.2f", t.CM(r.UltraI.WidthL), t.CM(r.UltraI.HeightL)),
		fmt.Sprintf("%.0f", r.UltraI.DensityPerM2(t)),
		"7 x 7 cm, 13,000/m^2")
	tab.Row("Hybrid (4 clusters)", 128,
		fmt.Sprintf("%.2f x %.2f", t.CM(r.Hybrid.WidthL), t.CM(r.Hybrid.HeightL)),
		fmt.Sprintf("%.0f", r.Hybrid.DensityPerM2(t)),
		"3.2 x 2.7 cm, 150,000/m^2")
	b.WriteString(tab.String())
	fmt.Fprintf(&b, "\ndensity ratio: %.1fx (paper: about 11.5x denser, 11x less area)\n", r.DensityRatio)
	fmt.Fprintf(&b, "Ultrascalar I wiring channels occupy %.0f%% of the occupied area —\n"+
		"the paper's \"each node of our H-tree floorplan would require area\n"+
		"comparable to the entire area of one of today's processors.\"\n",
		100*r.UltraI.ChannelShare())
	return b.String(), nil
}
