package exp

import (
	"fmt"
	"sort"
	"strings"

	"ultrascalar/internal/core"
)

// TimelineArt renders a retired-instruction timeline as ASCII Gantt art in
// the style of the paper's Figure 3: one row per dynamic instruction (in
// program order), '#' marking the cycles it occupied its station's
// functional unit. maxRows caps the output (0 = 64).
func TimelineArt(records []core.InstRecord, maxRows int) string {
	if maxRows <= 0 {
		maxRows = 64
	}
	recs := append([]core.InstRecord{}, records...)
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	if len(recs) > maxRows {
		recs = recs[:maxRows]
	}
	if len(recs) == 0 {
		return "(empty timeline)\n"
	}
	var minIssue, maxDone int64
	minIssue = recs[0].Issue
	for _, r := range recs {
		if r.Issue < minIssue {
			minIssue = r.Issue
		}
		if r.Done > maxDone {
			maxDone = r.Done
		}
	}
	span := maxDone - minIssue
	const maxWidth = 120
	scale := int64(1)
	for span/scale > maxWidth {
		scale *= 2
	}
	var b strings.Builder
	if scale > 1 {
		fmt.Fprintf(&b, "(each column = %d cycles)\n", scale)
	}
	for _, r := range recs {
		fmt.Fprintf(&b, "%4d %-18s |", r.Seq, truncate(r.Inst.String(), 18))
		for c := minIssue; c < maxDone; c += scale {
			if c+scale > r.Issue && c < r.Done {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		fmt.Fprintf(&b, "|  [%d,%d)\n", r.Issue, r.Done)
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "~"
}
