package exp

import (
	"fmt"
	"strings"

	"ultrascalar/internal/analysis"
	"ultrascalar/internal/core"
	"ultrascalar/internal/workload"
)

// E20: return-address stack ablation. The paper's stations recover from
// any misprediction in one cycle, but each misprediction still drains the
// speculative window; on call/return-heavy code the returns (JALR) are
// the dominant indirect jumps, and a return-address stack predicts them
// perfectly where the BTB mispredicts every return whose call site
// changed.

// ReturnStackRow compares BTB-only and RAS-backed runs.
type ReturnStackRow struct {
	Workload       string
	BTBCycles      int64
	RASCycles      int64
	BTBMispredicts int64
	RASMispredicts int64
}

// ReturnStack runs the recursive kernels both ways.
func ReturnStack(window int) ([]ReturnStackRow, error) {
	ws := []workload.Workload{
		workload.Hanoi(8),
		workload.QuickSort(32),
		workload.GCD(1071, 462), // no calls: the RAS must not hurt
	}
	var rows []ReturnStackRow
	for _, w := range ws {
		base, err := core.Run(w.Prog, w.Mem(), core.Config{Window: window, Granularity: 1})
		if err != nil {
			return nil, err
		}
		ras, err := core.Run(w.Prog, w.Mem(), core.Config{
			Window: window, Granularity: 1, ReturnStack: 32,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ReturnStackRow{
			Workload:       w.Name,
			BTBCycles:      base.Stats.Cycles,
			RASCycles:      ras.Stats.Cycles,
			BTBMispredicts: base.Stats.Mispredicts,
			RASMispredicts: ras.Stats.Mispredicts,
		})
	}
	return rows, nil
}

// ReturnStackReport renders E20.
func ReturnStackReport(window int) (string, error) {
	rows, err := ReturnStack(window)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E20: return-address stack on recursive kernels (n=%d)\n\n", window)
	tab := analysis.NewTable("workload", "cycles BTB", "cycles RAS", "mispredicts BTB", "mispredicts RAS")
	for _, r := range rows {
		tab.Row(r.Workload, r.BTBCycles, r.RASCycles, r.BTBMispredicts, r.RASMispredicts)
	}
	b.WriteString(tab.String())
	b.WriteString("\nThe RAS removes the return mispredictions the BTB cannot avoid when\ncall sites alternate; call-free code is unaffected.\n")
	return b.String(), nil
}
