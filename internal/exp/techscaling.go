package exp

import (
	"fmt"
	"strings"

	"ultrascalar/internal/analysis"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/vlsi"
)

// E19: technology scaling. The paper closes with "The Ultrascalar ideas
// could be realizable in a few years ... We believe that in a 0.1
// micrometer CMOS technology, a hybrid Ultrascalar with a window-size of
// 128 and 16 shared ALUs (with floating-point) should fit easily within a
// chip 1 cm on a side." This experiment sweeps λ across the late-90s
// roadmap nodes (including TI's announced 0.07 µm, cited in the paper's
// introduction) and reports the hybrid's chip size and clock.

// TechNode is one process generation.
type TechNode struct {
	Name   string
	Lambda float64 // µm per λ
}

// RoadmapNodes returns the process nodes the paper's era anticipated.
func RoadmapNodes() []TechNode {
	return []TechNode{
		{"0.35um (paper's study)", 0.2},
		{"0.25um", 0.125},
		{"0.18um", 0.09},
		{"0.13um", 0.065},
		{"0.10um (paper's estimate)", 0.05},
		{"0.07um (TI announcement)", 0.035},
	}
}

// TechScalingRow is the window-128 hybrid at one node.
type TechScalingRow struct {
	Node    string
	SideCM  float64
	ClockNs float64
	FitsCM1 bool
}

// TechScaling evaluates the paper's closing configuration across nodes.
// Wire delay per millimeter is held constant (repeatered wires), so the
// clock improves with the shorter absolute wires.
func TechScaling() ([]TechScalingRow, error) {
	var rows []TechScalingRow
	for _, node := range RoadmapNodes() {
		t := vlsi.Tech035()
		t.LambdaMicrons = node.Lambda
		// Gate delay scales roughly with feature size.
		t.GateDelayPs *= node.Lambda / 0.2
		md, err := vlsi.HybridModel(128, 32, 32, 32, memory.MConst(1), t, vlsi.Ultra2Linear)
		if err != nil {
			return nil, err
		}
		side := t.CM(md.SideL())
		rows = append(rows, TechScalingRow{
			Node:    node.Name,
			SideCM:  side,
			ClockNs: md.ClockPs(t) / 1000,
			FitsCM1: side <= 1.0,
		})
	}
	return rows, nil
}

// TechScalingReport renders E19.
func TechScalingReport() (string, error) {
	rows, err := TechScaling()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("E19: the window-128 hybrid across process nodes (L=32, W=32, C=32)\n\n")
	tab := analysis.NewTable("node", "side (cm)", "clock (ns)", "fits 1cm x 1cm")
	for _, r := range rows {
		fits := "no"
		if r.FitsCM1 {
			fits = "YES"
		}
		tab.Row(r.Node, fmt.Sprintf("%.2f", r.SideCM), fmt.Sprintf("%.2f", r.ClockNs), fits)
	}
	b.WriteString(tab.String())
	b.WriteString("\nPaper: \"in a 0.1 micrometer CMOS technology, a hybrid Ultrascalar with\na window-size of 128 and 16 shared ALUs ... should fit easily within a\nchip 1 cm on a side.\"\n")
	return b.String(), nil
}
