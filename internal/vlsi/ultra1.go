package vlsi

import (
	"fmt"
	"math"

	"ultrascalar/internal/memory"
)

// Ultrascalar I floorplan (paper Section 3, Figure 6): execution stations
// at the leaves of an H-tree whose links carry, for every logical
// register, the register's value and ready bit in both directions plus its
// modified bit, and whose fat-tree memory links carry min(subtree, M(n))
// memory ports. The paper's recurrence
//
//	X(n) = 2·X(n/4) + Θ(L) + Θ(M(n)),  X(1) = Θ(L)
//
// is realized here as a chain of 2-way merges (two merges per H-tree
// level), tracking rectangle dimensions exactly.

// regBundleWires returns the number of wires of the register datapath
// crossing any H-tree link: per register, (W+1) bits up, (W+1) bits down,
// one modified bit, plus the three 1-bit sequencing CSPPs (two wires each).
func regBundleWires(L, W int) int { return L*(2*(W+1)+1) + 6 }

// stationSideL returns the side of one Ultrascalar I execution station:
// the larger of its logic side (register file of L×(W+1) latched bits,
// W-bit ALU, decode, and L parallel-prefix leaf switches of W+1 bits) and
// the edge needed to terminate the full register bundle.
func stationSideL(L, W int, t Tech) float64 {
	logic := float64(L*(W+1))*t.BitCellArea +
		float64(W)*t.ALUBitArea +
		t.DecodeArea +
		float64(L*(W+1))*t.PrefixBitArea
	wireEdge := float64(regBundleWires(L, W)) * t.WirePitch
	return math.Max(math.Sqrt(logic), wireEdge)
}

// memWires returns the fat-tree wire count above a subtree of s stations.
func memWires(s, mOfN int, t Tech) int {
	ports := s
	if ports > mOfN {
		ports = mOfN
	}
	return ports * t.MemPortBits
}

// UltraIOptions controls model construction.
type UltraIOptions struct {
	// EmitBlocks records placed rectangles for geometric checks
	// (practical for n <= 256).
	EmitBlocks bool
}

// UltraIModel builds the physical model of an n-station Ultrascalar I.
// n must be a power of two. Block-free builds are memoized on
// (n, L, W, M(n), t).
func UltraIModel(n, L, W int, m memory.MFunc, t Tech, opt UltraIOptions) (*Model, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("vlsi: Ultrascalar I requires a power-of-two station count, got %d", n)
	}
	if !opt.EmitBlocks {
		k := modelKey{kind: "ultra1", n: n, l: L, w: W, mOfN: m.Of(n), t: t}
		return memoModel(k, func() (*Model, error) {
			return buildUltraIModel(n, L, W, m, t, opt)
		})
	}
	return buildUltraIModel(n, L, W, m, t, opt)
}

func buildUltraIModel(n, L, W int, m memory.MFunc, t Tech, opt UltraIOptions) (*Model, error) {
	mOfN := m.Of(n)
	s0 := stationSideL(L, W, t)

	type box struct {
		w, h   float64
		wire   float64 // root-to-leaf path within the box, in λ
		blocks []Rect
	}
	leaf := func(i int) box {
		b := box{w: s0, h: s0, wire: s0 / 2}
		if opt.EmitBlocks {
			b.blocks = []Rect{{Name: fmt.Sprintf("station%d", i), W: s0, H: s0}}
		}
		return b
	}
	shift := func(rs []Rect, dx, dy float64) []Rect {
		out := make([]Rect, len(rs))
		for i, r := range rs {
			r.X += dx
			r.Y += dy
			out[i] = r
		}
		return out
	}
	// merge joins two boxes side by side with a wiring channel of
	// thickness th between them, then rotates the result so successive
	// merges alternate direction (producing the H-tree).
	merge := func(a, b box, th float64, label string) box {
		w := a.w + th + b.w
		h := math.Max(a.h, b.h)
		out := box{w: h, h: w} // rotated
		// Signal path from the new root (center channel) into the deeper
		// child: across half the channel plus the child's own wire.
		out.wire = th/2 + math.Max(a.w, b.w)/2 + math.Max(a.wire, b.wire)
		if a.blocks != nil {
			var rs []Rect
			rs = append(rs, a.blocks...)
			rs = append(rs, Rect{Name: label, X: a.w, W: th, H: h})
			rs = append(rs, shift(b.blocks, a.w+th, 0)...)
			// Rotate (x,y,w,h) -> (y,x,h,w).
			out.blocks = make([]Rect, len(rs))
			for i, r := range rs {
				out.blocks[i] = Rect{Name: r.Name, X: r.Y, Y: r.X, W: r.H, H: r.W}
			}
		}
		return out
	}

	boxes := make([]box, n)
	for i := range boxes {
		boxes[i] = leaf(i)
	}
	size := 1
	channelArea := 0.0
	for len(boxes) > 1 {
		size *= 2
		th := float64(regBundleWires(L, W)+memWires(size, mOfN, t)) * t.WirePitch
		next := make([]box, 0, len(boxes)/2)
		for i := 0; i < len(boxes); i += 2 {
			channelArea += th * math.Max(boxes[i].h, boxes[i+1].h)
			next = append(next, merge(boxes[i], boxes[i+1], th, fmt.Sprintf("channel%d", size)))
		}
		boxes = next
	}
	root := boxes[0]
	md := &Model{
		Name: "ultrascalar-1", N: n, L: L, W: W,
		WidthL: root.w, HeightL: root.h,
		// "every datapath signal goes up the tree, and then down": 2W(n).
		MaxWireL:      2 * root.wire,
		GateDelay:     ultra1GateDelay(n, W),
		Blocks:        root.blocks,
		StationAreaL2: float64(n) * s0 * s0,
		ChannelAreaL2: channelArea,
	}
	return md, nil
}

// XRecurrence evaluates the paper's abstract side-length recurrence
// X(n) = 2X(n/4) + aL + bM(n), X(1) = aL, with unit-free constants, for
// cross-checking the constructive model's growth (n a power of 4).
func XRecurrence(n, L int, m memory.MFunc, a, b float64) float64 {
	if n == 1 {
		return a * float64(L)
	}
	return 2*XRecurrence(n/4, L, m, a, b) + a*float64(L) + b*float64(m.Of(n))
}
