package vlsi

import "ultrascalar/internal/circuit"

// NetlistArea estimates the silicon area of a generated netlist under the
// technology's standard-cell library, in λ². It connects the circuit
// substrate's gate counts to the floorplan models' cell constants, so
// netlist-level designs (CSPP trees, grids, ALUs, schedulers, arbiters)
// can be compared in the same units as the floorplans.
func NetlistArea(c *circuit.Circuit, t Tech) float64 {
	// Per-kind cell areas in λ², sized relative to the library constants:
	// a unit 2-input gate is modeled at 4 tracks × wire pitch on a
	// standard-cell row of 40λ height.
	row := 40.0
	unit := 4 * t.WirePitch * row
	areas := map[circuit.Kind]float64{
		circuit.Buf:  0.75 * unit,
		circuit.Not:  0.5 * unit,
		circuit.And2: unit,
		circuit.Or2:  unit,
		circuit.Xor2: 1.5 * unit,
		circuit.Mux2: 1.5 * unit,
	}
	var total float64
	for kind, n := range c.Counts() {
		total += areas[kind] * float64(n)
	}
	return total
}
