package vlsi

import "ultrascalar/internal/circuit"

// NetlistArea estimates the silicon area of a generated netlist under the
// technology's standard-cell library, in λ². It connects the circuit
// substrate's gate counts to the floorplan models' cell constants, so
// netlist-level designs (CSPP trees, grids, ALUs, schedulers, arbiters)
// can be compared in the same units as the floorplans.
func NetlistArea(c *circuit.Circuit, t Tech) float64 {
	// Sum in fixed kind order: float addition is not associative, so a
	// map-order walk would make the estimate depend on map iteration.
	counts := c.Counts()
	var total float64
	for kind := circuit.Input; kind <= circuit.Mux2; kind++ {
		total += t.CellArea(kind) * float64(counts[kind])
	}
	return total
}
