package vlsi

import (
	"sync"

	"ultrascalar/internal/circuit"
)

// Gate-delay models. Rather than assuming the paper's Θ bounds, the gate
// delays are measured from the generated netlists in internal/circuit.
// Netlists are built at full size where practical and extrapolated from
// the exact construction slope beyond that (the constructions are
// perfectly regular, so two measurements determine the line).

var (
	delayMu    sync.Mutex
	csppDepths = map[int]int{}
	gridDepths = map[[3]int]int{} // key: n, L, tree(0/1)
	aluDepths  = map[int]int{}
)

// csppTreeDepth measures the depth of the n-station register CSPP tree
// (Figure 4). Depth is independent of the value width, so a 2-bit payload
// is used.
func csppTreeDepth(n int) int {
	delayMu.Lock()
	defer delayMu.Unlock()
	if d, ok := csppDepths[n]; ok {
		return d
	}
	d := circuit.RegisterCSPP(n, 2, true).Depth()
	csppDepths[n] = d
	return d
}

// ultra2GridDepth measures (or extrapolates) the depth of the
// Ultrascalar II grid for n stations and L registers. Beyond the
// measurable size the linear variant is extended along its exact
// per-station slope and the tree variant along its per-doubling increment.
func ultra2GridDepth(n, l int, tree bool) int {
	const maxBuild = 96
	key := [3]int{n, l, boolInt(tree)}
	delayMu.Lock()
	if d, ok := gridDepths[key]; ok {
		delayMu.Unlock()
		return d
	}
	delayMu.Unlock()
	var d int
	if n <= maxBuild {
		c, _ := circuit.Ultra2Grid(n, l, 2, tree)
		d = c.Depth()
	} else if !tree {
		d1 := ultra2GridDepth(maxBuild/2, l, false)
		d2 := ultra2GridDepth(maxBuild, l, false)
		perStation := float64(d2-d1) / float64(maxBuild/2)
		d = d2 + int(perStation*float64(n-maxBuild)+0.5)
	} else {
		// Tree depth grows by a fixed increment per doubling of n+L.
		d1 := ultra2GridDepth(maxBuild/2, l, true)
		d2 := ultra2GridDepth(maxBuild, l, true)
		perDouble := d2 - d1
		if perDouble < 1 {
			perDouble = 1
		}
		d = d2
		for s := maxBuild; s < n; s *= 2 {
			d += perDouble
		}
	}
	delayMu.Lock()
	gridDepths[key] = d
	delayMu.Unlock()
	return d
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func log2ceil(x int) int {
	b := 0
	for 1<<b < x {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// stationGateDelay is the per-station decode + ALU contribution to the
// clock path: a fixed decode depth plus the measured depth of the
// parallel-prefix W-bit ALU netlist (circuit.ALU).
func stationGateDelay(w int) int { return 8 + aluDepth(w) }

// aluDepth measures (and memoizes) the single-cycle ALU's critical path.
func aluDepth(w int) int {
	delayMu.Lock()
	defer delayMu.Unlock()
	if d, ok := aluDepths[w]; ok {
		return d
	}
	d := circuit.ALU(w, true).Depth()
	aluDepths[w] = d
	return d
}

// ultra1GateDelay is the Ultrascalar I clock path: station logic plus the
// register CSPP tree, Θ(log n) (paper Figure 11, first column).
func ultra1GateDelay(n, w int) int { return stationGateDelay(w) + csppTreeDepth(n) }

// Ultra2Mode selects the Ultrascalar II datapath implementation.
type Ultra2Mode int

const (
	// Ultra2Linear is the Figure 7 grid: Θ(n+L) gate delay, Θ(n+L) side.
	Ultra2Linear Ultra2Mode = iota
	// Ultra2Tree is the Figure 8 mesh of trees: Θ(log(n+L)) gate delay,
	// Θ((n+L)·log(n+L)) side.
	Ultra2Tree
	// Ultra2Mixed linearizes the tree levels near the root where wire
	// delay dominates anyway (paper Section 5): the asymptotics of the
	// linear circuit with log-circuit constants — side Θ(n+L), gate delay
	// within a few gates of the tree version.
	Ultra2Mixed
)

// String names the mode.
func (m Ultra2Mode) String() string {
	switch m {
	case Ultra2Linear:
		return "linear"
	case Ultra2Tree:
		return "mesh-of-trees"
	default:
		return "mixed"
	}
}

func ultra2GateDelay(n, l, w int, mode Ultra2Mode) int {
	base := stationGateDelay(w)
	switch mode {
	case Ultra2Linear:
		return base + ultra2GridDepth(n, l, false)
	case Ultra2Tree:
		return base + ultra2GridDepth(n, l, true)
	default:
		// Mixed: the three levels nearest the root are linear; their wire
		// delay dominates, so the gate-delay penalty is a small constant.
		return base + ultra2GridDepth(n, l, true) + 8
	}
}
