package vlsi

import (
	"fmt"
	"math"

	"ultrascalar/internal/memory"
)

// Constructive three-dimensional Ultrascalar I model (paper Section 7).
// In 3D the H-tree becomes an oct-tree of station cubes: each merge joins
// two sub-volumes along an alternating axis with a wiring slab between
// them. A bundle of B wires crossing the slab occupies cross-section
// B·pitch², so the slab thickness is B·pitch²/(face area) — this is how
// "there is more space in three dimensions": the bundle spreads over a
// face instead of an edge.

// Model3D summarizes a constructive 3D layout.
type Model3D struct {
	Name      string
	N, L, W   int
	DimsL     [3]float64 // bounding box, λ
	MaxWireL  float64
	GateDelay int
}

// VolumeL3 returns the bounding volume in λ³.
func (m *Model3D) VolumeL3() float64 { return m.DimsL[0] * m.DimsL[1] * m.DimsL[2] }

// SideL returns the largest dimension.
func (m *Model3D) SideL() float64 {
	return math.Max(m.DimsL[0], math.Max(m.DimsL[1], m.DimsL[2]))
}

// UltraIModel3D builds the constructive 3D Ultrascalar I. n must be a
// power of two.
func UltraIModel3D(n, l, w int, m memory.MFunc, t Tech) (*Model3D, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("vlsi: 3D Ultrascalar I requires a power-of-two station count, got %d", n)
	}
	mOfN := m.Of(n)

	// A station cube: its logic volume, with a floor so the register
	// bundle terminates on one face (area >= bundle · pitch²).
	logicArea := float64(l*(w+1))*t.BitCellArea +
		float64(w)*t.ALUBitArea + t.DecodeArea +
		float64(l*(w+1))*t.PrefixBitArea
	// Treat standard cells as one layer of row height stacked volume.
	vol := logicArea * t.CellRowHeight
	faceNeed := float64(regBundleWires(l, w)) * t.WirePitch * t.WirePitch
	side := math.Cbrt(vol)
	if side*side < faceNeed {
		side = math.Sqrt(faceNeed)
	}

	type box struct {
		d    [3]float64
		wire float64
	}
	cur := box{d: [3]float64{side, side, side}, wire: side / 2}
	size := 1
	axis := 0
	for size < n {
		size *= 2
		wires := regBundleWires(l, w) + memWires(size, mOfN, t)
		face := cur.d[(axis+1)%3] * cur.d[(axis+2)%3]
		th := float64(wires) * t.WirePitch * t.WirePitch / face
		// A slab must at least pass one wire pitch.
		if th < t.WirePitch {
			th = t.WirePitch
		}
		var next box
		next.d = cur.d
		next.d[axis] = 2*cur.d[axis] + th
		next.wire = th/2 + cur.d[axis]/2 + cur.wire
		cur = next
		axis = (axis + 1) % 3
	}
	return &Model3D{
		Name: "ultrascalar-1-3d", N: n, L: l, W: w,
		DimsL:     cur.d,
		MaxWireL:  2 * cur.wire,
		GateDelay: ultra1GateDelay(n, w),
	}, nil
}
