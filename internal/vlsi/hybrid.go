package vlsi

import (
	"fmt"
	"math"

	"ultrascalar/internal/memory"
)

// Hybrid Ultrascalar floorplan (paper Section 6, Figures 9-10): clusters
// of C stations, each an Ultrascalar II grid extended with per-register
// modified-bit OR trees, connected by the Ultrascalar I H-tree datapath.
// The paper's recurrence:
//
//	U(n) = Θ(n+L)                      if n <= C
//	U(n) = Θ(L) + Θ(M(n)) + 2·U(n/4)   if n > C
//
// with solution U(n) = Θ(M(n) + L√(n/C) + √(nC)), minimized at C = Θ(L)
// where U(n) = Θ(M(n) + √(nL)).

// HybridModel builds the physical model of an n-station hybrid with
// clusters of size c. n/c must be a power of two. The clusters use the
// linear-gate-delay grid, as in the paper's Section 6 analysis. Builds
// are memoized on (mode, n, c, L, W, M(n), t).
func HybridModel(n, c, l, w int, m memory.MFunc, t Tech, mode Ultra2Mode) (*Model, error) {
	if c < 1 || n%c != 0 {
		return nil, fmt.Errorf("vlsi: cluster size %d must divide n=%d", c, n)
	}
	k := modelKey{kind: "hybrid", mode: mode, n: n, c: c, l: l, w: w, mOfN: m.Of(n), t: t}
	return memoModel(k, func() (*Model, error) {
		return hybridModel(n, c, l, w, m, t, mode, false)
	})
}

// HybridModelBlocks is HybridModel with placed rectangles emitted for
// geometric checks and SVG rendering (practical for small cluster
// counts).
func HybridModelBlocks(n, c, l, w int, m memory.MFunc, t Tech, mode Ultra2Mode) (*Model, error) {
	return hybridModel(n, c, l, w, m, t, mode, true)
}

func hybridModel(n, c, l, w int, m memory.MFunc, t Tech, mode Ultra2Mode, emit bool) (*Model, error) {
	if c < 1 || n%c != 0 {
		return nil, fmt.Errorf("vlsi: cluster size %d must divide n=%d", c, n)
	}
	k := n / c
	if k&(k-1) != 0 {
		return nil, fmt.Errorf("vlsi: hybrid requires a power-of-two cluster count, got %d", k)
	}
	mOfN := m.Of(n)

	cl, err := Ultra2Model(c, l, w, memory.MConst(min(c, mOfN)), t, mode)
	if err != nil {
		return nil, err
	}
	// The cluster presents the Ultrascalar I interface: the full register
	// bundle must terminate on its edge, and the modified-bit OR trees
	// add L·C gates of area.
	orArea := float64(l*c) * 40
	clSide := math.Max(math.Max(cl.WidthL, cl.HeightL),
		float64(regBundleWires(l, w))*t.WirePitch)
	clSide = math.Max(clSide, math.Sqrt(clSide*clSide+orArea))

	type box struct {
		w, h, wire float64
		blocks     []Rect
	}
	cur := box{w: clSide, h: clSide, wire: clSide / 2}
	if emit {
		cur.blocks = []Rect{{Name: "cluster", W: clSide, H: clSide}}
	}
	boxesLeft := k
	size := c
	for boxesLeft > 1 {
		size *= 2
		th := float64(regBundleWires(l, w)+memWires(size, mOfN, t)) * t.WirePitch
		next := box{
			w:    cur.h, // rotated, as in the Ultrascalar I merge
			h:    cur.w*2 + th,
			wire: th/2 + cur.w/2 + cur.wire,
		}
		if emit {
			// Two copies of cur side by side with the channel between,
			// then rotate (x,y,w,h) -> (y,x,h,w).
			var rs []Rect
			rs = append(rs, cur.blocks...)
			rs = append(rs, Rect{Name: fmt.Sprintf("channel%d", size), X: cur.w, W: th, H: cur.h})
			for _, r := range cur.blocks {
				r.X += cur.w + th
				rs = append(rs, r)
			}
			next.blocks = make([]Rect, len(rs))
			for i, r := range rs {
				next.blocks[i] = Rect{Name: r.Name, X: r.Y, Y: r.X, W: r.H, H: r.W}
			}
		}
		cur = next
		boxesLeft /= 2
	}

	// Gate delay: through the cluster grid, then the inter-cluster CSPP
	// tree of n/c leaves, then station logic.
	gd := ultra2GateDelay(c, l, w, mode)
	if k > 1 {
		gd += csppTreeDepth(k)
	}

	return &Model{
		Name: "hybrid", N: n, L: l, W: w,
		WidthL: cur.w, HeightL: cur.h,
		// Up the cluster tree and down, plus traversal of the source and
		// destination cluster grids.
		MaxWireL:  2*cur.wire + (cl.WidthL + cl.HeightL),
		GateDelay: gd,
		Blocks:    cur.blocks,
	}, nil
}

// URecurrence evaluates the paper's abstract hybrid side-length recurrence
// with unit-free constants a (register term) and b (memory term), for
// growth cross-checks (n and C powers of 4).
func URecurrence(n, c, l int, m memory.MFunc, a, b float64) float64 {
	if n <= c {
		return a * float64(n+l)
	}
	return a*float64(l) + b*float64(m.Of(n)) + 2*URecurrence(n/4, c, l, m, a, b)
}

// OptimalClusterSize sweeps cluster sizes and returns the one minimizing
// the hybrid layout (by √area, which is aspect-neutral: odd numbers of
// H-tree merges elongate the bounding box without changing its area) —
// the paper's Section 6 result that the optimum is C = Θ(L) in two
// dimensions.
func OptimalClusterSize(n, l, w int, m memory.MFunc, t Tech) (bestC int, bestSide float64, err error) {
	bestSide = math.Inf(1)
	for c := 1; c <= n; c *= 2 {
		if (n/c)&(n/c-1) != 0 {
			continue
		}
		md, e := HybridModel(n, c, l, w, m, t, Ultra2Linear)
		if e != nil {
			return 0, 0, e
		}
		side := math.Sqrt(md.AreaL2())
		if side < bestSide {
			bestSide = side
			bestC = c
		}
	}
	return bestC, bestSide, nil
}
