package vlsi

import (
	"math"

	"ultrascalar/internal/memory"
)

// Three-dimensional packaging models (paper Section 7). "In a true
// three-dimensional packaging technology the Ultrascalar bounds do improve
// because, intuitively, there is more space in three dimensions than in
// two." The closed forms below are the paper's, with unit constants; they
// are used by the 3D scaling experiment to print the volume and
// wire-length trends next to the 2D ones.

// Volume3D summarizes a 3D layout.
type Volume3D struct {
	Name    string
	Volume  float64 // λ³ (unit-free constants)
	Wire    float64 // longest wire, λ
	Cluster int     // optimal cluster size, where applicable
}

// UltraI3D: volume n·L^{3/2} for small memory bandwidth, plus an
// additional Θ(M(n)^{3/2}) when M(n) = Ω(n^{2/3+ε}); wire length
// n^{1/3}·L^{1/2} (small bandwidth) or M(n)^{1/2} (large).
func UltraI3D(n, l int, m memory.MFunc) Volume3D {
	nf, lf, mf := float64(n), float64(l), float64(m.Of(n))
	vol := nf * math.Pow(lf, 1.5) //uslint:allow techonly -- paper exponent (Section 8, 3D volume n*L^{3/2})
	volMem := math.Pow(mf, 1.5)   //uslint:allow techonly -- paper exponent (3D memory volume M^{3/2})
	wire := math.Cbrt(nf) * math.Sqrt(lf)
	if w2 := math.Sqrt(mf); w2 > wire {
		wire = w2
	}
	return Volume3D{Name: "ultrascalar-1-3d", Volume: vol + volMem, Wire: wire}
}

// UltraII3D: volume O(n² + L²) "whether the linear-depth or log-depth
// circuits are used, whereas in two dimensions an extra log n area is
// required to achieve log-depth circuits."
func UltraII3D(n, l int, _ memory.MFunc) Volume3D {
	nf, lf := float64(n), float64(l)
	vol := nf*nf + lf*lf
	return Volume3D{Name: "ultrascalar-2-3d", Volume: vol, Wire: math.Cbrt(vol)}
}

// Hybrid3D: "the optimal cluster size is Θ(L^{3/4}), as compared to Θ(L)
// in two dimensions. The total volume of the hybrid is O(n·L^{3/4})."
func Hybrid3D(n, l int, m memory.MFunc) Volume3D {
	nf, lf := float64(n), float64(l)
	c := int(math.Round(math.Pow(lf, 0.75))) //uslint:allow techonly -- paper exponent (3D optimal cluster Theta(L^{3/4}))
	if c < 1 {
		c = 1
	}
	vol := nf * math.Pow(lf, 0.75)            //uslint:allow techonly -- paper exponent (3D hybrid volume n*L^{3/4})
	volMem := math.Pow(float64(m.Of(n)), 1.5) //uslint:allow techonly -- paper exponent (3D memory volume M^{3/2})
	return Volume3D{Name: "hybrid-3d", Volume: vol + volMem, Wire: math.Cbrt(vol + volMem), Cluster: c}
}
