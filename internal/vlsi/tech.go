// Package vlsi models the physical complexity of the three Ultrascalar
// processors: floorplans, silicon area, wire lengths (which the paper
// equates with wire delay, "wire delay can be made linear in wire length
// by inserting repeater buffers"), and gate delays measured from the
// generated netlists in internal/circuit.
//
// The models are constructive: the Ultrascalar I H-tree, the
// Ultrascalar II diagonal grid and the two-level hybrid floorplan are
// built by the same recurrences the paper analyzes in Sections 3, 5 and 6,
// with concrete wire counts and standard-cell dimensions replacing the
// paper's Θ constants. The calibration targets the paper's empirical
// setting (Section 7): a 0.35 µm, three-metal-layer CMOS process (λ =
// 0.2 µm) and an ISA with 32 32-bit registers, where the paper's Magic
// layouts measured 7 cm × 7 cm for a 64-station Ultrascalar I datapath and
// 3.2 cm × 2.7 cm for a 128-station 4-cluster hybrid.
package vlsi

import (
	"math"

	"ultrascalar/internal/circuit"
)

// Tech holds technology and cell-library parameters. All lengths are in λ
// (half the minimum feature size); Lambda converts to physical units.
type Tech struct {
	// LambdaMicrons is the physical length of one λ in micrometers.
	LambdaMicrons float64
	// MetalLayers is the number of routing layers (3 in the paper's
	// academic flow).
	MetalLayers int
	// WirePitch is the center-to-center spacing of routed wires, in λ.
	// With few metal layers, parallel buses consume pitch × wires of
	// cross-section.
	WirePitch float64
	// MemPortBits is the number of wires one memory port needs through
	// the fat tree (address + data + control).
	MemPortBits int
	// BitCellArea is the area of one register-file bit (a latch the
	// station updates every cycle), in λ².
	BitCellArea float64
	// ALUBitArea is the datapath area per ALU bit slice (adder, logic,
	// shifter, operand muxing), in λ².
	ALUBitArea float64
	// DecodeArea is the fixed per-station decode/control area, in λ².
	DecodeArea float64
	// PrefixBitArea is the area of one bit of a parallel-prefix switch
	// node (mux + segment logic), in λ².
	PrefixBitArea float64
	// GateDelayPs is the delay of one unit gate, in picoseconds (used by
	// the clock-period model).
	GateDelayPs float64
	// WireDelayPsPerMM is the delay of one millimeter of repeatered wire,
	// in picoseconds.
	WireDelayPsPerMM float64
	// CellRowHeight is the standard-cell row height, in λ. Cell areas
	// and the constructive 3D model's stacking height derive from it.
	CellRowHeight float64
}

// Tech035 returns the paper's empirical technology: 0.35 µm CMOS with
// three metal layers.
func Tech035() Tech {
	return Tech{
		LambdaMicrons:    0.2,
		MetalLayers:      3,
		WirePitch:        8,
		MemPortBits:      66, // 32 address + 33 data/ready + control
		BitCellArea:      900,
		ALUBitArea:       12000,
		DecodeArea:       800000,
		PrefixBitArea:    350,
		GateDelayPs:      90,  // roughly one FO4 at 0.35 µm
		WireDelayPsPerMM: 100, // repeatered wire
		CellRowHeight:    40,
	}
}

// cellUnits gives each gate kind's standard-cell area in units of a
// 2-input NAND-equivalent cell (4 routing tracks wide on one cell row).
// These are library shape ratios; CellArea scales them by the process.
var cellUnits = map[circuit.Kind]float64{
	circuit.Buf:  0.75,
	circuit.Not:  0.5,
	circuit.And2: 1,
	circuit.Or2:  1,
	circuit.Xor2: 1.5,
	circuit.Mux2: 1.5,
}

// CellArea returns the standard-cell area of one gate of kind k, in λ².
// Inputs and constants occupy no cell area.
func (t Tech) CellArea(k circuit.Kind) float64 {
	unit := 4 * t.WirePitch * t.CellRowHeight
	return cellUnits[k] * unit
}

// MM converts λ to millimeters.
func (t Tech) MM(lambda float64) float64 { return lambda * t.LambdaMicrons / 1000 }

// CM converts λ to centimeters.
func (t Tech) CM(lambda float64) float64 { return t.MM(lambda) / 10 }

// AreaCM2 converts λ² to square centimeters.
func (t Tech) AreaCM2(lambda2 float64) float64 {
	cmPerLambda := t.LambdaMicrons / 1e4
	return lambda2 * cmPerLambda * cmPerLambda
}

// Model is the physical summary of one processor configuration.
type Model struct {
	Name string
	N    int // stations
	L    int // logical registers
	W    int // bits per register

	// WidthL and HeightL are the bounding box in λ.
	WidthL, HeightL float64
	// MaxWireL is the longest point-to-point signal path in λ (for the
	// Ultrascalar I, twice the root-to-leaf distance: "every datapath
	// signal goes up the tree, and then down").
	MaxWireL float64
	// GateDelay is the critical path in unit gate delays.
	GateDelay int

	// Blocks optionally holds the placed rectangles (stations and wiring
	// channels) for geometric verification; nil for large n.
	Blocks []Rect

	// StationAreaL2 and ChannelAreaL2 split the layout between execution
	// stations and wiring channels, where the model tracks them (the
	// Ultrascalar I H-tree). The paper's point that "each node of our
	// H-tree floorplan would require area comparable to the entire area
	// of one of today's processors" is visible as the channel share.
	StationAreaL2, ChannelAreaL2 float64
}

// ChannelShare returns the fraction of the occupied area used by wiring
// channels (0 when the model does not track the split).
func (m *Model) ChannelShare() float64 {
	total := m.StationAreaL2 + m.ChannelAreaL2
	if total == 0 {
		return 0
	}
	return m.ChannelAreaL2 / total
}

// Rect is an axis-aligned placed block, in λ.
type Rect struct {
	Name       string
	X, Y, W, H float64
}

// SideL returns the larger bounding-box dimension in λ.
func (m *Model) SideL() float64 { return math.Max(m.WidthL, m.HeightL) }

// AreaL2 returns the bounding-box area in λ².
func (m *Model) AreaL2() float64 { return m.WidthL * m.HeightL }

// WireDelayPs returns the worst wire delay under t's repeatered-wire model.
func (m *Model) WireDelayPs(t Tech) float64 {
	return t.WireDelayPsPerMM * t.MM(m.MaxWireL)
}

// GateDelayPs returns the gate critical path in picoseconds.
func (m *Model) GateDelayPs(t Tech) float64 {
	return float64(m.GateDelay) * t.GateDelayPs
}

// ClockPs returns the clock period implied by the model: the paper's
// "total delay" is the larger of the gate and wire critical paths (they
// compose, so the sum is reported; the asymptotics are identical).
func (m *Model) ClockPs(t Tech) float64 {
	return m.GateDelayPs(t) + m.WireDelayPs(t)
}

// DensityPerM2 returns execution stations per square meter, the metric the
// paper quotes for Figure 12 ("13,000 processors per square meter" versus
// "150,000 processors per square meter").
func (m *Model) DensityPerM2(t Tech) float64 {
	areaM2 := t.AreaCM2(m.AreaL2()) / 1e4
	return float64(m.N) / areaM2
}
