package vlsi

import (
	"math"
	"strings"
	"testing"

	"ultrascalar/internal/circuit"
	"ultrascalar/internal/memory"
)

func TestTechConversions(t *testing.T) {
	tech := Tech035()
	if got := tech.MM(5000); math.Abs(got-1.0) > 1e-9 { // 5000λ × 0.2µm = 1mm
		t.Errorf("MM(5000) = %f, want 1", got)
	}
	if got := tech.CM(50000); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("CM(50000) = %f, want 1", got)
	}
	// 1 cm² in λ²: (50000)².
	if got := tech.AreaCM2(50000 * 50000); math.Abs(got-1.0) > 1e-6 {
		t.Errorf("AreaCM2 = %f, want 1", got)
	}
}

func TestUltraIRequiresPowerOfTwo(t *testing.T) {
	if _, err := UltraIModel(12, 8, 8, memory.MConst(1), Tech035(), UltraIOptions{}); err == nil {
		t.Error("n=12 should be rejected")
	}
	if _, err := UltraIModel(0, 8, 8, memory.MConst(1), Tech035(), UltraIOptions{}); err == nil {
		t.Error("n=0 should be rejected")
	}
}

// TestUltraIGeometry verifies the emitted floorplan: stations and wiring
// channels fit in the bounding box and do not overlap.
func TestUltraIGeometry(t *testing.T) {
	for _, n := range []int{1, 4, 16, 64} {
		md, err := UltraIModel(n, 8, 8, memory.MPow(1, 0.5), Tech035(), UltraIOptions{EmitBlocks: true})
		if err != nil {
			t.Fatal(err)
		}
		stations := 0
		for _, r := range md.Blocks {
			if r.X < -1e-6 || r.Y < -1e-6 || r.X+r.W > md.WidthL+1e-6 || r.Y+r.H > md.HeightL+1e-6 {
				t.Errorf("n=%d: block %s out of bounds", n, r.Name)
			}
			if len(r.Name) > 7 && r.Name[:7] == "station" {
				stations++
			}
		}
		if stations != n {
			t.Errorf("n=%d: %d stations placed", n, stations)
		}
		for i := 0; i < len(md.Blocks); i++ {
			for j := i + 1; j < len(md.Blocks); j++ {
				a, b := md.Blocks[i], md.Blocks[j]
				if a.X < b.X+b.W-1e-6 && b.X < a.X+a.W-1e-6 &&
					a.Y < b.Y+b.H-1e-6 && b.Y < a.Y+a.H-1e-6 {
					t.Errorf("n=%d: blocks %s and %s overlap", n, a.Name, b.Name)
				}
			}
		}
	}
}

// TestUltraISqrtScaling: with M(n) = O(n^{1/2-ε}), the side grows as
// Θ(√n·L) — quadrupling n doubles the side (paper Case 1).
func TestUltraISqrtScaling(t *testing.T) {
	tech := Tech035()
	var sides []float64
	for _, n := range []int{64, 256, 1024, 4096} {
		md, err := UltraIModel(n, 32, 32, memory.MConst(1), tech, UltraIOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sides = append(sides, math.Sqrt(md.AreaL2()))
	}
	for i := 1; i < len(sides); i++ {
		ratio := sides[i] / sides[i-1]
		if ratio < 1.8 || ratio > 2.2 {
			t.Errorf("side ratio per 4x n = %.3f, want about 2 (Θ(√n))", ratio)
		}
	}
}

// TestUltraILinearInL: at fixed n, the Ultrascalar I side is Θ(L) — the
// wire bundles dominate (paper: "For a 64 64-bit register Ultrascalar I,
// each node of our H-tree floorplan would require area comparable to the
// entire area of one of today's processors!").
func TestUltraILinearInL(t *testing.T) {
	tech := Tech035()
	side := func(l int) float64 {
		md, err := UltraIModel(64, l, 32, memory.MConst(1), tech, UltraIOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return md.SideL()
	}
	r := side(64) / side(32)
	if r < 1.7 || r > 2.2 {
		t.Errorf("doubling L scales side by %.2f, want about 2", r)
	}
}

// TestUltraIMemoryDominates: with M(n) = n the side grows linearly
// (paper Case 3: "If processors require memory bandwidth linear in the
// number of outstanding instructions, the wire delays must also grow
// linearly").
func TestUltraIMemoryDominates(t *testing.T) {
	tech := Tech035()
	var sides []float64
	for _, n := range []int{256, 1024, 4096} {
		md, err := UltraIModel(n, 8, 8, memory.MLinear(), tech, UltraIOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sides = append(sides, math.Sqrt(md.AreaL2()))
	}
	for i := 1; i < len(sides); i++ {
		ratio := sides[i] / sides[i-1]
		if ratio < 3.0 {
			t.Errorf("with M(n)=n side ratio per 4x n = %.2f, want near 4 (Θ(n))", ratio)
		}
	}
}

func TestUltraIIScalingLinear(t *testing.T) {
	tech := Tech035()
	side := func(n int) float64 {
		md, err := Ultra2Model(n, 32, 32, memory.MConst(1), tech, Ultra2Linear)
		if err != nil {
			t.Fatal(err)
		}
		return md.SideL()
	}
	// Θ(n+L): for n >> L, doubling n roughly doubles the side.
	r := side(2048) / side(1024)
	if r < 1.8 || r > 2.2 {
		t.Errorf("UltraII side ratio per 2x n = %.2f, want about 2", r)
	}
	// The mesh-of-trees variant costs a log factor in side.
	lin, _ := Ultra2Model(1024, 32, 32, memory.MConst(1), tech, Ultra2Linear)
	tr, _ := Ultra2Model(1024, 32, 32, memory.MConst(1), tech, Ultra2Tree)
	mix, _ := Ultra2Model(1024, 32, 32, memory.MConst(1), tech, Ultra2Mixed)
	if tr.SideL() < 1.5*lin.SideL() {
		t.Errorf("tree side %.0f should exceed linear %.0f by a log factor", tr.SideL(), lin.SideL())
	}
	if mix.SideL() > 1.1*lin.SideL() {
		t.Errorf("mixed side %.0f should be close to linear %.0f", mix.SideL(), lin.SideL())
	}
	// Gate delays: linear >> tree; mixed close to tree.
	if lin.GateDelay < 4*tr.GateDelay {
		t.Errorf("linear gate delay %d should dwarf tree %d at n=1024", lin.GateDelay, tr.GateDelay)
	}
	if mix.GateDelay > tr.GateDelay+16 {
		t.Errorf("mixed gate delay %d should be near tree %d", mix.GateDelay, tr.GateDelay)
	}
}

func TestGateDelayScaling(t *testing.T) {
	// Ultrascalar I: Θ(log n) gate delay.
	d64 := ultra1GateDelay(64, 32)
	d4096 := ultra1GateDelay(4096, 32)
	if d4096-d64 > 40 {
		t.Errorf("UltraI gate delay grew %d -> %d; should be logarithmic", d64, d4096)
	}
	if d4096 <= d64 {
		t.Errorf("gate delay should still grow: %d -> %d", d64, d4096)
	}
	// Ultrascalar II linear: Θ(n+L); extrapolation must agree with the
	// slope of measured sizes.
	d32 := ultra2GridDepth(32, 8, false)
	d64l := ultra2GridDepth(64, 8, false)
	d128 := ultra2GridDepth(128, 8, false) // extrapolated
	slopeMeasured := float64(d64l-d32) / 32
	slopeExtrap := float64(d128-d64l) / 64
	if math.Abs(slopeMeasured-slopeExtrap) > 0.5 {
		t.Errorf("linear-depth extrapolation slope %.2f deviates from measured %.2f",
			slopeExtrap, slopeMeasured)
	}
	// Tree: small increments per doubling.
	t256 := ultra2GridDepth(256, 8, true)
	t4096 := ultra2GridDepth(4096, 8, true)
	if t4096-t256 > 30 {
		t.Errorf("tree depth grew %d -> %d over 16x; should be logarithmic", t256, t4096)
	}
}

func TestHybridDominates(t *testing.T) {
	tech := Tech035()
	m := memory.MConst(1)
	n, l := 4096, 32
	u1, err := UltraIModel(n, l, 32, m, tech, UltraIOptions{})
	if err != nil {
		t.Fatal(err)
	}
	u2, err := Ultra2Model(n, l, 32, m, tech, Ultra2Linear)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := HybridModel(n, l, l, 32, m, tech, Ultra2Linear)
	if err != nil {
		t.Fatal(err)
	}
	if hy.AreaL2() >= u1.AreaL2() || hy.AreaL2() >= u2.AreaL2() {
		t.Errorf("hybrid area %.3g should beat UltraI %.3g and UltraII %.3g",
			hy.AreaL2(), u1.AreaL2(), u2.AreaL2())
	}
	if hy.MaxWireL >= u1.MaxWireL || hy.MaxWireL >= u2.MaxWireL {
		t.Errorf("hybrid wire %.3g should beat UltraI %.3g and UltraII %.3g",
			hy.MaxWireL, u1.MaxWireL, u2.MaxWireL)
	}
}

// TestCrossoverAtLSquared reproduces the paper's comparison: "for smaller
// processors (n < O(L²)) the Ultrascalar II dominates the Ultrascalar I
// ... but for larger processors the Ultrascalar I dominates."
func TestCrossoverAtLSquared(t *testing.T) {
	tech := Tech035()
	m := memory.MConst(1)
	l := 32 // L² = 1024
	area := func(n int, two bool) float64 {
		if two {
			md, _ := Ultra2Model(n, l, 32, m, tech, Ultra2Linear)
			return md.AreaL2()
		}
		md, _ := UltraIModel(n, l, 32, m, tech, UltraIOptions{})
		return md.AreaL2()
	}
	if !(area(64, true) < area(64, false)) {
		t.Error("at n=64 << L², Ultrascalar II should dominate")
	}
	if !(area(4096, false) < area(4096, true)) {
		t.Error("at n=4096 >> L², Ultrascalar I should dominate")
	}
}

// TestOptimalClusterIsL reproduces Section 6: "it is not a coincidence
// that C = L" — the sweep minimum lands at Θ(L).
func TestOptimalClusterIsL(t *testing.T) {
	tech := Tech035()
	for _, l := range []int{8, 32, 64} {
		c, _, err := OptimalClusterSize(4096, l, 32, memory.MConst(1), tech)
		if err != nil {
			t.Fatal(err)
		}
		if c < l/2 || c > 2*l {
			t.Errorf("L=%d: optimal C=%d, want Θ(L) within [L/2, 2L]", l, c)
		}
	}
}

// TestFigure12 reproduces the paper's empirical comparison: a
// 64-station Ultrascalar I register datapath versus a 128-station
// 4-cluster hybrid in 0.35 µm, with the hybrid about 11 times denser
// (paper: 13,000 vs 150,000 processors per square meter, i.e. 11.5x).
func TestFigure12(t *testing.T) {
	tech := Tech035()
	m := memory.MConst(1) // the paper left space only for M(n) = O(1)
	u1, err := UltraIModel(64, 32, 32, m, tech, UltraIOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hy, err := HybridModel(128, 32, 32, 32, m, tech, Ultra2Linear)
	if err != nil {
		t.Fatal(err)
	}
	// Within 2x of the paper's absolute sizes (7cm and ~3cm sides).
	if s := tech.CM(u1.SideL()); s < 3.5 || s > 14 {
		t.Errorf("UltraI side %.2f cm, paper 7 cm", s)
	}
	if s := tech.CM(hy.SideL()); s < 1.5 || s > 6.4 {
		t.Errorf("hybrid side %.2f cm, paper about 3 cm", s)
	}
	ratio := hy.DensityPerM2(tech) / u1.DensityPerM2(tech)
	if ratio < 8 || ratio > 16 {
		t.Errorf("density ratio %.1f, paper about 11.5", ratio)
	}
}

func TestHybridErrors(t *testing.T) {
	tech := Tech035()
	if _, err := HybridModel(64, 5, 8, 8, memory.MConst(1), tech, Ultra2Linear); err == nil {
		t.Error("cluster size not dividing n should fail")
	}
	if _, err := HybridModel(96, 32, 8, 8, memory.MConst(1), tech, Ultra2Linear); err == nil {
		t.Error("non-power-of-two cluster count should fail")
	}
	if _, err := Ultra2Model(0, 8, 8, memory.MConst(1), tech, Ultra2Linear); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestRecurrences(t *testing.T) {
	// X(n) with M constant solves to Θ(√n L): quadrupling n doubles X.
	m := memory.MConst(1)
	x1 := XRecurrence(1024, 32, m, 1, 1)
	x4 := XRecurrence(4096, 32, m, 1, 1)
	if r := x4 / x1; r < 1.9 || r > 2.1 {
		t.Errorf("X recurrence ratio %.2f, want 2", r)
	}
	// With M(n)=n it becomes linear.
	xm1 := XRecurrence(1024, 32, memory.MLinear(), 1, 1)
	xm4 := XRecurrence(4096, 32, memory.MLinear(), 1, 1)
	if r := xm4 / xm1; r < 3.0 {
		t.Errorf("X with M=n ratio %.2f, want near 4", r)
	}
	// U(n) with C=L beats X(n) for large n.
	u := URecurrence(4096, 32, 32, m, 1, 1)
	if u >= x4 {
		t.Errorf("U(4096)=%.0f should beat X(4096)=%.0f", u, x4)
	}
}

func TestThreeD(t *testing.T) {
	m := memory.MConst(1)
	// Hybrid 3D optimal cluster is Θ(L^{3/4}).
	h := Hybrid3D(4096, 256, m)
	if h.Cluster < 32 || h.Cluster > 128 { // 256^{3/4} = 64
		t.Errorf("3D optimal cluster %d, want about 64", h.Cluster)
	}
	// Volumes: hybrid n·L^{3/4} beats UltraI n·L^{3/2} at large L.
	u1 := UltraI3D(4096, 256, m)
	if h.Volume >= u1.Volume {
		t.Errorf("3D hybrid volume %.3g should beat UltraI %.3g", h.Volume, u1.Volume)
	}
	// UltraII 3D volume is Θ(n²+L²).
	u2a := UltraII3D(1024, 32, m)
	u2b := UltraII3D(2048, 32, m)
	if r := u2b.Volume / u2a.Volume; r < 3.9 || r > 4.1 {
		t.Errorf("UltraII 3D volume ratio %.2f, want 4", r)
	}
	for _, v := range []Volume3D{u1, u2a, h} {
		if v.Wire <= 0 || v.Name == "" {
			t.Errorf("bad 3D summary %+v", v)
		}
	}
}

func TestClockModel(t *testing.T) {
	tech := Tech035()
	md, err := UltraIModel(64, 32, 32, memory.MConst(1), tech, UltraIOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if md.GateDelayPs(tech) <= 0 || md.WireDelayPs(tech) <= 0 {
		t.Error("delays should be positive")
	}
	if md.ClockPs(tech) != md.GateDelayPs(tech)+md.WireDelayPs(tech) {
		t.Error("clock should be the sum of gate and wire paths")
	}
	if md.DensityPerM2(tech) <= 0 {
		t.Error("density should be positive")
	}
	if md.SideL() != math.Max(md.WidthL, md.HeightL) {
		t.Error("SideL wrong")
	}
}

// TestUltra2WrapDoublesArea: the Section 4 wrap-around remark ("nearly a
// factor of two in area").
func TestUltra2WrapDoublesArea(t *testing.T) {
	tech := Tech035()
	base, err := Ultra2Model(64, 32, 32, memory.MConst(1), tech, Ultra2Linear)
	if err != nil {
		t.Fatal(err)
	}
	wrap, err := Ultra2WrapModel(64, 32, 32, memory.MConst(1), tech, Ultra2Linear)
	if err != nil {
		t.Fatal(err)
	}
	ratio := wrap.AreaL2() / base.AreaL2()
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("wrap-around area ratio %.2f, want about 2", ratio)
	}
	if wrap.GateDelay != base.GateDelay {
		t.Error("wrap variant keeps the grid's gate delay")
	}
	if _, err := Ultra2WrapModel(0, 8, 8, memory.MConst(1), tech, Ultra2Linear); err == nil {
		t.Error("bad n should propagate the error")
	}
}

// TestHybridGeometry: emitted hybrid blocks (clusters and channels) fit
// in the bounding box without overlaps.
func TestHybridGeometry(t *testing.T) {
	tech := Tech035()
	md, err := HybridModelBlocks(128, 32, 32, 32, memory.MConst(1), tech, Ultra2Linear)
	if err != nil {
		t.Fatal(err)
	}
	clusters := 0
	for _, r := range md.Blocks {
		if r.X < -1e-6 || r.Y < -1e-6 || r.X+r.W > md.WidthL+1e-6 || r.Y+r.H > md.HeightL+1e-6 {
			t.Errorf("block %s out of bounds (%.0f,%.0f %0.fx%.0f vs %.0fx%.0f)",
				r.Name, r.X, r.Y, r.W, r.H, md.WidthL, md.HeightL)
		}
		if r.Name == "cluster" {
			clusters++
		}
	}
	if clusters != 4 {
		t.Errorf("%d cluster blocks, want 4", clusters)
	}
	for i := 0; i < len(md.Blocks); i++ {
		for j := i + 1; j < len(md.Blocks); j++ {
			a, b := md.Blocks[i], md.Blocks[j]
			if a.X < b.X+b.W-1e-6 && b.X < a.X+a.W-1e-6 &&
				a.Y < b.Y+b.H-1e-6 && b.Y < a.Y+a.H-1e-6 {
				t.Errorf("blocks %s and %s overlap", a.Name, b.Name)
			}
		}
	}
	// Plain HybridModel emits no blocks.
	bare, _ := HybridModel(128, 32, 32, 32, memory.MConst(1), tech, Ultra2Linear)
	if bare.Blocks != nil {
		t.Error("plain model should not emit blocks")
	}
	// And the SVG renders the clusters.
	svg := RenderSVG(md, tech)
	if strings.Count(svg, "cluster") != 4 {
		t.Error("SVG missing cluster rects")
	}
}

func TestRenderSVG(t *testing.T) {
	tech := Tech035()
	md, err := UltraIModel(16, 8, 8, memory.MConst(1), tech, UltraIOptions{EmitBlocks: true})
	if err != nil {
		t.Fatal(err)
	}
	svg := RenderSVG(md, tech)
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Error("not an SVG document")
	}
	if strings.Count(svg, "station") != 16 {
		t.Errorf("want 16 station rects, got %d", strings.Count(svg, "station"))
	}
	if !strings.Contains(svg, "channel") {
		t.Error("missing wiring channels")
	}
	// Without blocks, still a valid document.
	bare, _ := Ultra2Model(8, 8, 8, memory.MConst(1), tech, Ultra2Linear)
	if svg := RenderSVG(bare, tech); !strings.Contains(svg, "</svg>") {
		t.Error("bare model should render too")
	}
}

// TestUltraIAreaBreakdown: the wiring channels are a large share of the
// Ultrascalar I layout — the paper's "each node of our H-tree floorplan
// would require area comparable to the entire area of one of today's
// processors" — and the share grows with L.
func TestUltraIAreaBreakdown(t *testing.T) {
	tech := Tech035()
	share := func(l int) float64 {
		md, err := UltraIModel(64, l, 32, memory.MConst(1), tech, UltraIOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if md.StationAreaL2 <= 0 || md.ChannelAreaL2 <= 0 {
			t.Fatal("breakdown missing")
		}
		return md.ChannelShare()
	}
	// The wiring channels dominate: both stations and channels are
	// register-bundle-bound (∝ L), so the share is large at every L.
	for _, l := range []int{8, 32, 64} {
		if s := share(l); s < 0.4 || s > 0.95 {
			t.Errorf("L=%d: channel share %.2f, want wiring-dominated layout", l, s)
		}
	}
	// Models without the split report zero share.
	u2, _ := Ultra2Model(16, 8, 8, memory.MConst(1), tech, Ultra2Linear)
	if u2.ChannelShare() != 0 {
		t.Error("UltraII model should report no split")
	}
}

// TestNetlistAreaScaling: the register CSPP netlist's cell area grows
// about linearly in n at fixed width, and the ALU's in W.
func TestNetlistAreaScaling(t *testing.T) {
	tech := Tech035()
	a16 := NetlistArea(circuit.RegisterCSPP(16, 33, true), tech)
	a64 := NetlistArea(circuit.RegisterCSPP(64, 33, true), tech)
	if a16 <= 0 {
		t.Fatal("area should be positive")
	}
	if r := a64 / a16; r < 3.5 || r > 5.5 {
		t.Errorf("CSPP area ratio for 4x n = %.2f, want about 4 (plus log factor)", r)
	}
	alu16 := NetlistArea(circuit.ALU(16, true), tech)
	alu32 := NetlistArea(circuit.ALU(32, true), tech)
	if r := alu32 / alu16; r < 1.6 || r > 3.0 {
		t.Errorf("ALU area ratio for 2x W = %.2f, want about 2", r)
	}
	// The netlist ALU area is the same order as the library's per-bit
	// constant (ALUBitArea x W) — the two models agree.
	libArea := float64(32) * tech.ALUBitArea
	if alu32 < libArea/8 || alu32 > libArea*8 {
		t.Errorf("netlist ALU area %.3g vs library model %.3g: more than 8x apart", alu32, libArea)
	}
}

func TestUltra2ModeString(t *testing.T) {
	if Ultra2Linear.String() != "linear" || Ultra2Tree.String() != "mesh-of-trees" ||
		Ultra2Mixed.String() != "mixed" {
		t.Error("mode names wrong")
	}
}
