//uslint:allow techonly -- rendering geometry (canvas pixels, strokes), not a physical model

package vlsi

import (
	"fmt"
	"strings"
)

// RenderSVG draws a floorplan's placed blocks as an SVG document, in the
// spirit of the paper's Figure 12 layout plots. The model must have been
// built with block emission (UltraIOptions.EmitBlocks); without blocks
// only the bounding box is drawn.
func RenderSVG(m *Model, t Tech) string {
	const canvas = 960.0
	scale := canvas / m.SideL()
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.1f %.1f">`,
		canvas, canvas*m.HeightL/m.SideL()+40, canvas, canvas*m.HeightL/m.SideL()+40)
	b.WriteByte('\n')
	fmt.Fprintf(&b, `<rect x="0" y="0" width="%.1f" height="%.1f" fill="#f8f8f4" stroke="#555"/>`,
		m.WidthL*scale, m.HeightL*scale)
	b.WriteByte('\n')
	for _, r := range m.Blocks {
		fill := "#7c9ccb" // stations
		if strings.HasPrefix(r.Name, "channel") {
			fill = "#d9b382" // wiring channels
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#333" stroke-width="0.4"><title>%s</title></rect>`,
			r.X*scale, r.Y*scale, r.W*scale, r.H*scale, fill, r.Name)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, `<text x="4" y="%.1f" font-family="monospace" font-size="14">%s: n=%d L=%d W=%d, %.2f x %.2f cm</text>`,
		m.HeightL*scale+24, m.Name, m.N, m.L, m.W, t.CM(m.WidthL), t.CM(m.HeightL))
	b.WriteString("\n</svg>\n")
	return b.String()
}
