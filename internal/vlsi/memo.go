package vlsi

import "sync"

// The experiment sweeps (Figure 11, the recurrence cross-checks, the
// cluster-size sweeps) rebuild identical floorplans many times: every
// regime revisits the same (architecture, n) grid, and every hybrid build
// constructs its cluster's Ultrascalar II grid again. Each builder
// consumes the bandwidth function only through M(n), so the tuple
// (architecture, mode, n, C, L, W, M(n), technology) determines the model
// exactly, and constructed models are safe to cache.

// modelKey identifies one constructive model build. Tech is an all-scalar
// struct, so the key is comparable.
type modelKey struct {
	kind       string // "ultra1", "ultra2", "hybrid"
	mode       Ultra2Mode
	n, c, l, w int
	mOfN       int
	t          Tech
}

// modelMemo maps modelKey to a Model master copy (stored by value, never
// with Blocks). sync.Map fits the access pattern: a small key space
// written once and then read by many concurrent sweep workers.
var modelMemo sync.Map

// memoModel returns a copy of the cached model for k, building and
// caching on a miss. Only block-free models are cached — a value copy of
// such a model shares no mutable state, so callers (Ultra2WrapModel, the
// hybrid's cluster sizing) may freely mutate what they get back. Errors
// are never cached.
func memoModel(k modelKey, build func() (*Model, error)) (*Model, error) {
	if v, ok := modelMemo.Load(k); ok {
		cp := v.(Model)
		return &cp, nil
	}
	md, err := build()
	if err != nil || md.Blocks != nil {
		return md, err
	}
	modelMemo.Store(k, *md)
	cp := *md
	return &cp, nil
}
