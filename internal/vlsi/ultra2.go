package vlsi

import (
	"fmt"
	"math"

	"ultrascalar/internal/memory"
)

// Ultrascalar II floorplan (paper Section 5, Figure 7): execution stations
// along the diagonal, the register datapath in the lower triangle (rows of
// register bindings crossing columns of argument searches), memory
// switches in the upper triangle. Side length Θ(n+L) for the linear
// datapath; the mesh-of-trees costs an extra Θ(log(n+L)) factor; the mixed
// strategy keeps the linear side with near-log gate delay.

// ultra2StationSideL is the side of an Ultrascalar II station: ALU and
// decode only — unlike the Ultrascalar I it holds no register file (the
// initial register file sits at the grid's corner).
func ultra2StationSideL(w int, t Tech) float64 {
	return math.Sqrt(float64(w)*t.ALUBitArea + t.DecodeArea)
}

// lanePitchL is the routing pitch of one grid row or column: a register
// number, a W-bit value, a ready bit and a control bit.
func lanePitchL(l, w int, t Tech) float64 {
	return float64(log2ceil(l)+w+2) * t.WirePitch
}

// Ultra2Model builds the physical model of an n-station, L-register
// Ultrascalar II in the given datapath mode. Builds are memoized on
// (mode, n, L, W, M(n), t).
func Ultra2Model(n, l, w int, m memory.MFunc, t Tech, mode Ultra2Mode) (*Model, error) {
	if n < 1 {
		return nil, fmt.Errorf("vlsi: Ultrascalar II requires n >= 1, got %d", n)
	}
	k := modelKey{kind: "ultra2", mode: mode, n: n, l: l, w: w, mOfN: m.Of(n), t: t}
	return memoModel(k, func() (*Model, error) {
		return buildUltra2Model(n, l, w, m, t, mode)
	})
}

func buildUltra2Model(n, l, w int, m memory.MFunc, t Tech, mode Ultra2Mode) (*Model, error) {
	lane := lanePitchL(l, w, t)
	s := ultra2StationSideL(w, t)

	// Columns: two argument columns per station plus L outgoing-value
	// columns; rows: one binding row per station plus L initial-register
	// rows. Stations must fit along the diagonal.
	width := float64(n)*math.Max(s, 2*lane) + float64(l)*lane
	height := float64(n)*math.Max(s, lane) + float64(l)*lane

	// The memory switches in the upper triangle need to bring M(n) ports
	// to the edge.
	memEdge := float64(memWires(n, m.Of(n), t)) * t.WirePitch
	width = math.Max(width, memEdge)

	switch mode {
	case Ultra2Tree:
		// Fan-out and reduction trees widen every lane by a factor of
		// Θ(log(n+L)) in the worst case (paper: side Θ((n+L)log(n+L))).
		f := 1 + 0.25*math.Log2(float64(n+l)) //uslint:allow techonly -- routing-overhead fit factor, not a technology constant
		width *= f
		height *= f
	case Ultra2Mixed:
		// Three tree levels fit "without impacting the total layout area,
		// since the gates were dominating the area" (Section 5).
		width *= 1.05  //uslint:allow techonly -- Section 5 three-level overhead, not a technology constant
		height *= 1.05 //uslint:allow techonly -- Section 5 three-level overhead, not a technology constant
	}

	return &Model{
		Name: "ultrascalar-2-" + mode.String(), N: n, L: l, W: w,
		WidthL: width, HeightL: height,
		// A value travels down its producer's row and up the consumer's
		// column: bounded by width + height.
		MaxWireL:  width + height,
		GateDelay: ultra2GateDelay(n, l, w, mode),
	}, nil
}

// Ultra2WrapModel builds the wrap-around variant of the Ultrascalar II
// the paper mentions in Section 4: per-station refill like the
// Ultrascalar I ("The Ultrascalar II can easily be modified to handle
// wrap-around, but ... it appears to cost nearly a factor of two in area
// to implement the wrap-around mechanism"). Cycle-level behaviour is the
// engine at granularity 1; physically, each dimension grows by √2 so the
// area doubles.
func Ultra2WrapModel(n, l, w int, m memory.MFunc, t Tech, mode Ultra2Mode) (*Model, error) {
	md, err := Ultra2Model(n, l, w, m, t, mode)
	if err != nil {
		return nil, err
	}
	md.Name = "ultrascalar-2-wrap-" + mode.String()
	md.WidthL *= math.Sqrt2
	md.HeightL *= math.Sqrt2
	md.MaxWireL *= math.Sqrt2
	return md, nil
}
