package vlsi

import (
	"math"
	"testing"

	"ultrascalar/internal/analysis"
	"ultrascalar/internal/memory"
)

// TestUltraI3DConstructiveScaling: with small memory bandwidth, the
// constructive 3D model's volume grows linearly in n (paper: volume
// n·L^{3/2}) and its wire length as about n^{1/3} (paper: n^{1/3}L^{1/2}).
func TestUltraI3DConstructiveScaling(t *testing.T) {
	tech := Tech035()
	var ns, vols, wires []float64
	for _, n := range []int{64, 512, 4096, 32768} {
		md, err := UltraIModel3D(n, 32, 32, memory.MConst(1), tech)
		if err != nil {
			t.Fatal(err)
		}
		ns = append(ns, float64(n))
		vols = append(vols, md.VolumeL3())
		wires = append(wires, md.MaxWireL)
		if md.GateDelay <= 0 || md.SideL() <= 0 {
			t.Errorf("n=%d: bad model %+v", n, md)
		}
	}
	vfit, err := analysis.FitPower(ns, vols)
	if err != nil {
		t.Fatal(err)
	}
	if vfit.Exponent < 0.85 || vfit.Exponent > 1.25 {
		t.Errorf("3D volume exponent %.3f, want about 1 (Θ(n·L^{3/2}))", vfit.Exponent)
	}
	wfit, err := analysis.FitPower(ns, wires)
	if err != nil {
		t.Fatal(err)
	}
	if wfit.Exponent < 0.25 || wfit.Exponent > 0.45 {
		t.Errorf("3D wire exponent %.3f, want about 1/3", wfit.Exponent)
	}
}

// TestUltraI3DBeats2D: the 3D wire length is asymptotically shorter than
// the 2D one at equal n (n^{1/3} vs n^{1/2}).
func TestUltraI3DBeats2D(t *testing.T) {
	tech := Tech035()
	n := 4096
	d2, err := UltraIModel(n, 32, 32, memory.MConst(1), tech, UltraIOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d3, err := UltraIModel3D(n, 32, 32, memory.MConst(1), tech)
	if err != nil {
		t.Fatal(err)
	}
	if d3.MaxWireL >= d2.MaxWireL {
		t.Errorf("3D wire %.3g should beat 2D %.3g at n=%d", d3.MaxWireL, d2.MaxWireL, n)
	}
}

// TestUltraI3DLScaling: the 3D volume grows as L^{3/2}, between the 2D
// area's L² and linear.
func TestUltraI3DLScaling(t *testing.T) {
	tech := Tech035()
	vol := func(l int) float64 {
		md, err := UltraIModel3D(1024, l, 32, memory.MConst(1), tech)
		if err != nil {
			t.Fatal(err)
		}
		return md.VolumeL3()
	}
	// At moderate L the station is logic-bound and volume grows about
	// linearly in L — 3D genuinely has "more space", so the wire-face
	// constraint that forces L^{3/2} only binds at large L.
	rSmall := vol(64) / vol(32)
	if rSmall < 1.3 || rSmall > 3.3 {
		t.Errorf("volume ratio for 2x L (32->64) = %.2f, out of range", rSmall)
	}
	// In the asymptotic face-bound regime the doubling ratio approaches
	// 2^{3/2} ≈ 2.83 (paper: volume Θ(n·L^{3/2})).
	rLarge := vol(256) / vol(128)
	if rLarge < 2.0 || rLarge > 3.2 {
		t.Errorf("volume ratio for 2x L (128->256) = %.2f, want near 2.8 (L^{3/2})", rLarge)
	}
	if math.IsNaN(rSmall) || math.IsNaN(rLarge) {
		t.Fatal("NaN")
	}
}

func TestUltraI3DErrors(t *testing.T) {
	if _, err := UltraIModel3D(12, 8, 8, memory.MConst(1), Tech035()); err == nil {
		t.Error("non-power-of-two should fail")
	}
}
