package vlsi

import (
	"reflect"
	"testing"

	"ultrascalar/internal/memory"
)

// Memoized builds must be indistinguishable from fresh ones, and callers
// must be able to mutate a returned model (Ultra2WrapModel does) without
// corrupting the cache.
func TestModelMemoReturnsIndependentCopies(t *testing.T) {
	tech := Tech035()
	m := memory.MPow(1, 0.5)

	a, err := UltraIModel(64, 32, 32, m, tech, UltraIOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := UltraIModel(64, 32, 32, m, tech, UltraIOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("memo returned the same *Model twice; copies required")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("cached rebuild differs:\n first  %+v\n second %+v", a, b)
	}

	// Mutate the first result the way Ultra2WrapModel mutates its base
	// model; a fresh build must not see the mutation.
	saved := *b
	a.WidthL *= 2
	a.Name = "mutated"
	c, err := UltraIModel(64, 32, 32, m, tech, UltraIOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*c, saved) {
		t.Fatalf("mutating a returned model corrupted the cache:\n got  %+v\n want %+v", *c, saved)
	}
}

// Wrap models double the base area; with the base build memoized the wrap
// must still come out scaled, not cached-unscaled.
func TestUltra2WrapModelWithMemo(t *testing.T) {
	tech := Tech035()
	m := memory.MPow(1, 0.5)
	base, err := Ultra2Model(64, 32, 32, m, tech, Ultra2Linear)
	if err != nil {
		t.Fatal(err)
	}
	wrap, err := Ultra2WrapModel(64, 32, 32, m, tech, Ultra2Linear)
	if err != nil {
		t.Fatal(err)
	}
	ratio := wrap.AreaL2() / base.AreaL2()
	if ratio < 1.99 || ratio > 2.01 {
		t.Fatalf("wrap-around area ratio = %.4f, want 2 (paper Section 4)", ratio)
	}
	// And the base must be untouched by the wrap build.
	again, err := Ultra2Model(64, 32, 32, m, tech, Ultra2Linear)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, again) {
		t.Fatal("building the wrap model mutated the cached base model")
	}
}

// Different bandwidth regimes with the same M(n) at one point may share a
// cache entry only when M(n) actually coincides; different M(n) must not
// collide.
func TestModelMemoKeysOnBandwidth(t *testing.T) {
	tech := Tech035()
	lo, err := UltraIModel(256, 32, 32, memory.MConst(1), tech, UltraIOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := UltraIModel(256, 32, 32, memory.MLinear(), tech, UltraIOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lo.AreaL2() >= hi.AreaL2() {
		t.Fatalf("M(n)=1 area %.0f should be below M(n)=n area %.0f; memo key may be collapsing regimes",
			lo.AreaL2(), hi.AreaL2())
	}
}
