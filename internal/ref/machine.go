package ref

import (
	"fmt"

	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
)

// Machine is the golden in-order interpreter exposed one instruction at a
// time, so an out-of-order engine can cross-check each retiring
// instruction against the architectural semantics before committing it
// (the fault-detection checker of internal/core uses exactly this:
// compute the next Effect, compare, and Advance only on a match).
type Machine struct {
	prog  []isa.Inst
	mem   *memory.Flat
	regs  []isa.Word
	pc    int
	nregs int
	// executed counts Advance calls, including the halt.
	executed int
	halted   bool
}

// NewMachine returns a machine at PC 0 with zeroed registers. mem is the
// machine's own data memory (pass a clone if it is shared). initRegs, when
// non-nil, seeds the register file.
func NewMachine(prog []isa.Inst, mem *memory.Flat, nregs int, initRegs []isa.Word) *Machine {
	if nregs == 0 {
		nregs = isa.NumRegs
	}
	regs := make([]isa.Word, nregs)
	copy(regs, initRegs)
	return &Machine{prog: prog, mem: mem, regs: regs, nregs: nregs}
}

// PC returns the next instruction's program counter.
func (m *Machine) PC() int { return m.pc }

// Regs returns the live register file (do not mutate).
func (m *Machine) Regs() []isa.Word { return m.regs }

// Mem returns the machine's data memory (do not mutate).
func (m *Machine) Mem() *memory.Flat { return m.mem }

// Executed returns the number of instructions advanced, including halt.
func (m *Machine) Executed() int { return m.executed }

// Halted reports whether a halt instruction has been advanced past.
func (m *Machine) Halted() bool { return m.halted }

// Effect is the complete architectural effect of one instruction: its PC,
// successor, register write, and memory access. It is computed without
// mutating the machine, so a checker can compare it against an engine's
// retiring instruction and Advance only when they agree.
type Effect struct {
	PC   int
	Next int
	Halt bool

	WritesReg bool
	Reg       uint8
	RegVal    isa.Word

	IsLoad   bool
	IsStore  bool
	Addr     isa.Word
	StoreVal isa.Word

	Branch bool
	Taken  bool
}

// Effect computes the next instruction's architectural effect without
// applying it. It fails when the PC left the program or the instruction
// names an out-of-range register.
func (m *Machine) Effect() (Effect, error) {
	if m.halted {
		return Effect{}, fmt.Errorf("ref: machine already halted at pc=%d", m.pc)
	}
	if m.pc < 0 || m.pc >= len(m.prog) {
		return Effect{}, fmt.Errorf("%w: pc=%d len=%d", ErrPCOutOfRange, m.pc, len(m.prog))
	}
	in := m.prog[m.pc]
	if err := checkRegs(in, m.nregs); err != nil {
		return Effect{}, err
	}
	a, b := readOperands(in, m.regs)
	eff := Effect{PC: m.pc, Next: m.pc + 1}
	switch {
	case in.IsHalt():
		eff.Halt = true
		eff.Next = m.pc
	case in.Op == isa.OpNop:
	case in.IsLoad():
		eff.IsLoad = true
		eff.Addr = isa.EffAddr(in, a)
		eff.WritesReg, eff.Reg, eff.RegVal = true, in.Rd, m.mem.Load(eff.Addr)
	case in.IsStore():
		eff.IsStore = true
		eff.Addr = isa.EffAddr(in, a)
		eff.StoreVal = b
	case in.IsBranch():
		eff.Branch = true
		eff.Taken = isa.BranchTaken(in, a, b)
		eff.Next = isa.NextPC(in, m.pc, a, b)
	case in.IsJump():
		eff.Next = isa.NextPC(in, m.pc, a, b)
		eff.WritesReg, eff.Reg, eff.RegVal = true, in.Rd, isa.Word(m.pc+1)
	default:
		eff.WritesReg, eff.Reg, eff.RegVal = true, in.Rd, isa.ALUOp(in, a, b)
	}
	return eff, nil
}

// Advance applies an effect previously computed by Effect, moving the
// machine one instruction forward.
func (m *Machine) Advance(eff Effect) {
	m.executed++
	if eff.Halt {
		m.halted = true
		return
	}
	if eff.WritesReg {
		m.regs[eff.Reg] = eff.RegVal
	}
	if eff.IsStore {
		m.mem.Store(eff.Addr, eff.StoreVal)
	}
	m.pc = eff.Next
}
