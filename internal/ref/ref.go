// Package ref implements the golden sequential interpreter for the ISA.
// Every processor simulator in this repository is cross-checked against it:
// the architectural register file and data memory at halt must match
// exactly, instruction for instruction, because the paper's processors "all
// implement identical instruction sets, with identical scheduling policies"
// and differ only in VLSI complexity.
package ref

import (
	"errors"
	"fmt"

	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
)

// ErrNoHalt is returned when the step limit is exhausted before a halt
// instruction commits.
var ErrNoHalt = errors.New("ref: step limit exceeded without halt")

// ErrPCOutOfRange is returned when control transfers outside the program.
var ErrPCOutOfRange = errors.New("ref: PC out of range")

// Result is the outcome of a program run: final architectural state plus
// the dynamic instruction stream statistics.
type Result struct {
	Regs     []isa.Word // final register values, length = number of regs
	Mem      *memory.Flat
	Executed int   // dynamically executed instructions, including halt
	Trace    []int // PCs in execution order (only if Config.KeepTrace)
	Branches int   // dynamic conditional branches
	Taken    int   // of which taken
	Loads    int
	Stores   int
	FinalPC  int
}

// Config controls a reference run.
type Config struct {
	NumRegs   int  // number of logical registers; 0 means isa.NumRegs
	StepLimit int  // maximum dynamic instructions; 0 means 1<<22
	KeepTrace bool // record the dynamic PC trace
}

// Run executes the program from PC 0 until a halt instruction, using mem as
// data memory (mutated in place; pass a clone if you need the original).
// Registers start at zero. It is a loop over Machine.Effect/Advance, so the
// batch interpreter and the steppable checker can never diverge.
func Run(prog []isa.Inst, mem *memory.Flat, cfg Config) (*Result, error) {
	m := NewMachine(prog, mem, cfg.NumRegs, nil)
	limit := cfg.StepLimit
	if limit == 0 {
		limit = 1 << 22
	}
	res := &Result{Regs: m.regs, Mem: mem}

	for steps := 0; steps < limit; steps++ {
		eff, err := m.Effect()
		if err != nil {
			return res, err
		}
		if cfg.KeepTrace {
			res.Trace = append(res.Trace, eff.PC)
		}
		res.Executed++
		switch {
		case eff.Halt:
			res.FinalPC = eff.PC
			return res, nil
		case eff.IsLoad:
			res.Loads++
		case eff.IsStore:
			res.Stores++
		case eff.Branch:
			res.Branches++
			if eff.Taken {
				res.Taken++
			}
		}
		m.Advance(eff)
	}
	return res, ErrNoHalt
}

// readOperands fetches the instruction's source values: a is the first
// operand (rs1), b the second (rs2).
func readOperands(in isa.Inst, regs []isa.Word) (a, b isa.Word) {
	switch isa.FormatOf(in.Op) {
	case isa.FormatR, isa.FormatB:
		return regs[in.Rs1], regs[in.Rs2]
	case isa.FormatI:
		return regs[in.Rs1], 0
	default:
		return 0, 0
	}
}

func checkRegs(in isa.Inst, nregs int) error {
	for _, r := range in.Reads() {
		if int(r) >= nregs {
			return fmt.Errorf("ref: %s reads r%d but machine has %d registers", in, r, nregs)
		}
	}
	if d, ok := in.Writes(); ok && int(d) >= nregs {
		return fmt.Errorf("ref: %s writes r%d but machine has %d registers", in, d, nregs)
	}
	return nil
}
