package ref

import (
	"errors"
	"testing"

	"ultrascalar/internal/asm"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
)

func run(t *testing.T, src string) *Result {
	t.Helper()
	p := asm.MustAssemble(src)
	res, err := Run(p.Insts, memory.NewFlat(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStraightLine(t *testing.T) {
	res := run(t, `
		li r1, 6
		li r2, 7
		mul r3, r1, r2
		halt
	`)
	if res.Regs[3] != 42 {
		t.Errorf("r3 = %d, want 42", res.Regs[3])
	}
	if res.Executed != 4 {
		t.Errorf("executed %d, want 4", res.Executed)
	}
}

func TestLoopSum(t *testing.T) {
	// sum 1..10 = 55
	res := run(t, `
		li r1, 10
		li r2, 0
	loop:
		add r2, r2, r1
		addi r1, r1, -1
		bne r1, r0, loop
		halt
	`)
	if res.Regs[2] != 55 {
		t.Errorf("r2 = %d, want 55", res.Regs[2])
	}
	if res.Branches != 10 || res.Taken != 9 {
		t.Errorf("branches %d taken %d, want 10/9", res.Branches, res.Taken)
	}
}

func TestMemoryOps(t *testing.T) {
	res := run(t, `
		li r1, 100   ; base
		li r2, 42
		sw r2, 0(r1)
		sw r2, 1(r1)
		lw r3, 0(r1)
		lw r4, 1(r1)
		add r5, r3, r4
		sw r5, 2(r1)
		halt
	`)
	if res.Regs[5] != 84 {
		t.Errorf("r5 = %d", res.Regs[5])
	}
	if got := res.Mem.Load(102); got != 84 {
		t.Errorf("mem[102] = %d, want 84", got)
	}
	if res.Loads != 2 || res.Stores != 3 {
		t.Errorf("loads %d stores %d", res.Loads, res.Stores)
	}
}

func TestJalCall(t *testing.T) {
	res := run(t, `
		li r1, 5
		jal r31, double
		mov r10, r2
		halt
	double:
		add r2, r1, r1
		jalr r0, r31, 0
	`)
	if res.Regs[10] != 10 {
		t.Errorf("r10 = %d, want 10", res.Regs[10])
	}
	if res.Regs[31] != 2 {
		t.Errorf("link r31 = %d, want 2", res.Regs[31])
	}
}

func TestNoZeroRegister(t *testing.T) {
	// r0 is a general register (the paper's Figure 1 writes R0).
	res := run(t, `
		li r0, 7
		add r1, r0, r0
		halt
	`)
	if res.Regs[0] != 7 || res.Regs[1] != 14 {
		t.Errorf("r0=%d r1=%d, want 7/14", res.Regs[0], res.Regs[1])
	}
}

func TestFigure1Sequence(t *testing.T) {
	// The paper's Figure 1 snapshot: initial R0=10 and the station-4
	// instruction sets R0 to 42. With R5=50, R6=8: R0 = 50-8 = 42,
	// matching the figure's value.
	p := asm.MustAssemble(`
		div r3, r1, r2
		add r0, r0, r3
		add r1, r5, r6
		add r1, r0, r1
		mul r2, r5, r6
		add r2, r2, r4
		sub r0, r5, r6
		add r4, r0, r7
		halt
	`)
	mem := memory.NewFlat()
	// Seed registers via a prologue instead: run with explicit register
	// init by prepending li instructions.
	init := asm.MustAssemble(`
		li r0, 10
		li r1, 100
		li r2, 5
		li r5, 50
		li r6, 8
		li r4, 3
		li r7, 2
	`)
	prog := append(append([]isa.Inst{}, init.Insts...), p.Insts...)
	res, err := Run(prog, mem, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[0] != 42 {
		t.Errorf("R0 = %d, want 42 (Figure 1 snapshot)", res.Regs[0])
	}
	// R3 = 100/5 = 20, R0(st7) = 10+20 = 30 then overwritten by 42.
	if res.Regs[3] != 20 {
		t.Errorf("R3 = %d, want 20", res.Regs[3])
	}
	if res.Regs[4] != 42+2 {
		t.Errorf("R4 = %d, want 44", res.Regs[4])
	}
}

func TestTrace(t *testing.T) {
	p := asm.MustAssemble("nop\nj skip\nnop\nskip: halt")
	res, err := Run(p.Insts, memory.NewFlat(), Config{KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 3}
	if len(res.Trace) != len(want) {
		t.Fatalf("trace %v, want %v", res.Trace, want)
	}
	for i := range want {
		if res.Trace[i] != want[i] {
			t.Errorf("trace %v, want %v", res.Trace, want)
			break
		}
	}
	if res.FinalPC != 3 {
		t.Errorf("final pc %d", res.FinalPC)
	}
}

func TestStepLimit(t *testing.T) {
	p := asm.MustAssemble("loop: j loop")
	_, err := Run(p.Insts, memory.NewFlat(), Config{StepLimit: 100})
	if !errors.Is(err, ErrNoHalt) {
		t.Errorf("err = %v, want ErrNoHalt", err)
	}
}

func TestPCOutOfRange(t *testing.T) {
	p := asm.MustAssemble("nop") // falls off the end
	_, err := Run(p.Insts, memory.NewFlat(), Config{})
	if !errors.Is(err, ErrPCOutOfRange) {
		t.Errorf("err = %v, want ErrPCOutOfRange", err)
	}
}

func TestRegisterRangeCheck(t *testing.T) {
	prog := []isa.Inst{{Op: isa.OpAdd, Rd: 9, Rs1: 0, Rs2: 0}, {Op: isa.OpHalt}}
	if _, err := Run(prog, memory.NewFlat(), Config{NumRegs: 8}); err == nil {
		t.Error("expected register range error with 8 registers")
	}
	prog2 := []isa.Inst{{Op: isa.OpAdd, Rd: 0, Rs1: 9, Rs2: 0}, {Op: isa.OpHalt}}
	if _, err := Run(prog2, memory.NewFlat(), Config{NumRegs: 8}); err == nil {
		t.Error("expected register read range error")
	}
}

func TestFlatMemory(t *testing.T) {
	f := memory.NewFlat()
	f.Store(5, 9)
	f.Store(6, 0) // storing zero keeps map canonical
	if f.Load(5) != 9 || f.Load(6) != 0 || f.Load(7) != 0 {
		t.Error("flat load/store wrong")
	}
	if f.Len() != 1 {
		t.Errorf("len = %d, want 1", f.Len())
	}
	g := f.Clone()
	if !f.Equal(g) {
		t.Error("clone should be equal")
	}
	g.Store(5, 10)
	if f.Equal(g) {
		t.Error("should differ after store")
	}
	if d := f.Diff(g); d == "equal" || d == "" {
		t.Errorf("diff = %q", d)
	}
	if d := f.Diff(f.Clone()); d != "equal" {
		t.Errorf("self diff = %q", d)
	}
	f.Store(5, 0)
	if f.Len() != 0 {
		t.Error("storing zero should erase")
	}
	h := memory.NewFlat()
	h.LoadWords(10, []isa.Word{1, 2, 3})
	if h.Load(12) != 3 {
		t.Error("LoadWords wrong")
	}
	// Equal with differing keys of same count.
	x, y := memory.NewFlat(), memory.NewFlat()
	x.Store(1, 1)
	y.Store(2, 1)
	if x.Equal(y) {
		t.Error("different keys should not be equal")
	}
}
