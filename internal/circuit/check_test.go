package circuit

import (
	"strings"
	"testing"
)

// TestDRCSuite is the acceptance gate: every generated family passes its
// design rules at the paper's plot sizes.
func TestDRCSuite(t *testing.T) {
	for _, r := range DRCSuite([]int{4, 16, 64}) {
		if !r.OK() {
			t.Errorf("%s n=%d: %d violation(s): %v", r.Name, r.N, len(r.Result.Violations), r.Result.Violations)
		}
	}
}

// TestDRCExpectedCounts holds the closed-form recurrences exactly equal
// to the generators' emitted gate counts, including non-power-of-two and
// odd sizes where the tree splits unevenly.
func TestDRCExpectedCounts(t *testing.T) {
	ns := []int{1, 2, 3, 5, 7, 8, 12, 16, 31, 64}
	ws := []int{1, 3, 8}
	for _, n := range ns {
		for _, w := range ws {
			for _, tree := range []bool{false, true} {
				if got, want := RegisterCSPP(n, w, tree).NumGates(), ExpectedGatesRegisterCSPP(n, w, tree); got != want {
					t.Errorf("RegisterCSPP(n=%d, w=%d, tree=%v): built %d gates, recurrence %d", n, w, tree, got, want)
				}
			}
		}
		for _, tree := range []bool{false, true} {
			if got, want := Figure5CSPP(n, tree).NumGates(), ExpectedGatesFigure5(n, tree); got != want {
				t.Errorf("Figure5CSPP(n=%d, tree=%v): built %d gates, recurrence %d", n, tree, got, want)
			}
		}
	}
	for _, n := range []int{1, 3, 8, 16} {
		for _, l := range []int{3, 8, 16} {
			for _, tree := range []bool{false, true} {
				c, _ := Ultra2Grid(n, l, 4, tree)
				if got, want := c.NumGates(), ExpectedGatesUltra2Grid(n, l, 4, tree); got != want {
					t.Errorf("Ultra2Grid(n=%d, l=%d, tree=%v): built %d gates, recurrence %d", n, l, tree, got, want)
				}
				if got, want := HybridModifiedBits(n, l, tree).NumGates(), ExpectedGatesHybridModified(n, l, tree); got != want {
					t.Errorf("HybridModifiedBits(n=%d, l=%d, tree=%v): built %d gates, recurrence %d", n, l, tree, got, want)
				}
			}
		}
	}
}

// hasRule reports whether the result contains a violation of the rule.
func hasRule(r CheckResult, rule string) bool {
	for _, v := range r.Violations {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

// smallFixture builds a clean little netlist: two inputs, an AND, a
// buffered copy, one output.
func smallFixture() *Circuit {
	c := New()
	a, b := c.NewInput(), c.NewInput()
	x := c.And(a, b)
	c.Output(c.Buf(x))
	return c
}

func TestCheckCleanFixture(t *testing.T) {
	r := smallFixture().Check(CheckOptions{MaxFanout: 4, MaxDead: 1, ExpectedGates: 4})
	if !r.OK() {
		t.Fatalf("clean fixture violates: %v", r.Violations)
	}
	if r.Gates != 4 || r.Inputs != 2 || r.Outputs != 1 {
		t.Fatalf("fixture stats wrong: %+v", r)
	}
}

// TestCheckBrokenCycle rewires a gate to depend on a later gate — the
// kind of loop add() forbids but a mutated or deserialized netlist could
// carry — and expects the cycle rule to fire.
func TestCheckBrokenCycle(t *testing.T) {
	c := smallFixture()
	// The AND (gate 2) now reads the buffer (gate 3) that reads it back.
	c.gates[2].in[1] = 3
	r := c.Check(CheckOptions{})
	if !hasRule(r, "cycle") {
		t.Fatalf("forward-wired netlist passed the cycle rule: %v", r.Violations)
	}
}

// TestCheckBrokenFloatingInput declares an input nothing consumes.
func TestCheckBrokenFloatingInput(t *testing.T) {
	c := smallFixture()
	c.NewInput()
	r := c.Check(CheckOptions{})
	if !hasRule(r, "floating-input") {
		t.Fatalf("unconnected input passed: %v", r.Violations)
	}
}

// TestCheckBrokenOperand plants an out-of-range operand and a value in
// an unused slot.
func TestCheckBrokenOperand(t *testing.T) {
	c := smallFixture()
	c.gates[3].in[0] = 99
	r := c.Check(CheckOptions{})
	if !hasRule(r, "operand") {
		t.Fatalf("out-of-range operand passed: %v", r.Violations)
	}

	c = smallFixture()
	c.gates[3].in[2] = 1 // Buf has arity 1; slot 2 must stay unset
	r = c.Check(CheckOptions{})
	if !hasRule(r, "operand") {
		t.Fatalf("spurious operand passed: %v", r.Violations)
	}
}

func TestCheckFanoutBound(t *testing.T) {
	c := New()
	a := c.NewInput()
	c.Output(c.And(c.Buf(a), c.Not(a))) // a drives 2 consumers
	if r := c.Check(CheckOptions{MaxFanout: 1}); !hasRule(r, "fanout") {
		t.Fatalf("fanout 2 passed bound 1: %v", r.Violations)
	}
	if r := c.Check(CheckOptions{MaxFanout: 2}); hasRule(r, "fanout") {
		t.Fatalf("fanout 2 violated bound 2: %v", r.Violations)
	}
}

func TestCheckDeadLogic(t *testing.T) {
	c := smallFixture()
	// An OR chain feeding nothing.
	d := c.Or(0, 1)
	c.Or(d, 1)
	r := c.Check(CheckOptions{MaxDead: 1})
	if !hasRule(r, "dead") {
		t.Fatalf("2 dead gates passed bound 1: %v", r.Violations)
	}
	if r.DeadGates != 2 {
		t.Fatalf("DeadGates = %d, want 2", r.DeadGates)
	}
}

func TestCheckGateCountMismatch(t *testing.T) {
	c := smallFixture()
	c.Buf(0) // one gate the recurrence does not predict
	r := c.Check(CheckOptions{ExpectedGates: 4})
	if !hasRule(r, "gate-count") {
		t.Fatalf("count mismatch passed: %v", r.Violations)
	}
	if !strings.Contains(r.Violations[len(r.Violations)-1].Detail, "5") {
		t.Fatalf("violation does not name the actual count: %v", r.Violations)
	}
}

// TestCheckCatchesBrokenGenerator mutates a real generated netlist — a
// 16-station CSPP tree with one operand rewired forward — and expects
// the suite options that pass on the pristine netlist to fail on it.
func TestCheckCatchesBrokenGenerator(t *testing.T) {
	c := RegisterCSPP(16, 8, true)
	opt := CheckOptions{
		MaxFanout:     csppFanoutBound(16, 8),
		MaxDead:       csppDeadBound(16, 8),
		ExpectedGates: ExpectedGatesRegisterCSPP(16, 8, true),
	}
	if r := c.Check(opt); !r.OK() {
		t.Fatalf("pristine netlist violates: %v", r.Violations)
	}
	// Find a mid-netlist mux and wire its selector to the last gate.
	for id := c.NumGates() / 2; id < c.NumGates(); id++ {
		if c.gates[id].kind == Mux2 {
			c.gates[id].in[0] = int32(c.NumGates() - 1)
			break
		}
	}
	if r := c.Check(opt); !hasRule(r, "cycle") {
		t.Fatalf("rewired generator netlist passed: %v", r.Violations)
	}
}
