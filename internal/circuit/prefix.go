package circuit

// Segmented parallel-prefix circuit generators. These are the netlist
// counterparts of internal/cspp: the same divide-and-conquer structure,
// emitted as gates, so depth can be measured and functional equivalence
// property-tested.

// ScanOp supplies the associative operator of a segmented scan as circuit
// fragments over value buses.
type ScanOp interface {
	// Width is the value bus width.
	Width() int
	// Combine emits op(a, b) where a is the accumulated (earlier) value.
	Combine(c *Circuit, a, b Bus) Bus
	// Identity emits the operator identity as a constant bus.
	Identity(c *Circuit) Bus
}

// PassScanOp is the register-forwarding operator a⊗b = a (paper Section 2).
// Combine emits no gates: selection is done entirely by the segment logic.
type PassScanOp struct{ W int }

// Width returns the register binding width.
func (p PassScanOp) Width() int { return p.W }

// Combine returns the earlier value unchanged.
func (PassScanOp) Combine(_ *Circuit, a, _ Bus) Bus { return a }

// Identity returns an all-zero bus; it is only observable when no segment
// bit is high, which the datapath precludes.
func (p PassScanOp) Identity(c *Circuit) Bus { return c.ConstBus(0, p.W) }

// AndScanOp is the 1-bit operator a⊗b = a∧b of the paper's Figure 5.
type AndScanOp struct{}

// Width is 1.
func (AndScanOp) Width() int { return 1 }

// Combine emits a single AND gate.
func (AndScanOp) Combine(c *Circuit, a, b Bus) Bus { return Bus{c.And(a[0], b[0])} }

// Identity is constant true.
func (AndScanOp) Identity(c *Circuit) Bus { return Bus{c.Const(true)} }

// ScanItem is one input position: a segment net and a value bus.
type ScanItem struct {
	Seg int
	Val Bus
}

// blockResult mirrors cspp.summary at circuit level.
type blockResult struct {
	incl    []Bus // inclusive segmented scan per position
	covered []int // per position: does a segment exist at <= position?
	val     Bus   // block value since last segment (or since start)
	anySeg  int   // does the block contain a segment?
}

// scanTree emits the balanced segmented-scan network.
func scanTree(c *Circuit, items []ScanItem, op ScanOp) blockResult {
	n := len(items)
	if n == 1 {
		it := items[0]
		incl := c.MuxBus(it.Seg, op.Combine(c, op.Identity(c), it.Val), it.Val)
		return blockResult{
			incl:    []Bus{incl},
			covered: []int{it.Seg},
			val:     incl,
			anySeg:  it.Seg,
		}
	}
	half := n / 2
	left := scanTree(c, items[:half], op)
	right := scanTree(c, items[half:], op)

	incl := make([]Bus, 0, n)
	covered := make([]int, 0, n)
	incl = append(incl, left.incl...)
	covered = append(covered, left.covered...)
	for i := 0; i < n-half; i++ {
		// Positions in the right block not covered by a right-block segment
		// continue accumulation from the left block's tail value.
		fixed := c.MuxBus(right.covered[i],
			op.Combine(c, left.val, right.incl[i]),
			right.incl[i])
		incl = append(incl, fixed)
		covered = append(covered, c.Or(right.covered[i], left.anySeg))
	}
	val := c.MuxBus(right.anySeg, op.Combine(c, left.val, right.val), right.val)
	return blockResult{
		incl:    incl,
		covered: covered,
		val:     val,
		anySeg:  c.Or(left.anySeg, right.anySeg),
	}
}

// BuildCSPPTree emits the cyclic segmented parallel-prefix network of the
// paper's Figure 4 (generalized over the operator): inputs are already-
// declared nets in items; the function returns the per-position exclusive
// cyclic outputs. Position i receives the scan over positions strictly
// before i in cyclic order, wrapping through the whole-ring summary — the
// acyclic equivalent of tying the tree top together, valid whenever at
// least one segment bit is high. Depth is Θ(log n).
func BuildCSPPTree(c *Circuit, items []ScanItem, op ScanOp) []Bus {
	n := len(items)
	if n == 0 {
		return nil
	}
	res := scanTree(c, items, op)
	out := make([]Bus, n)
	for i := 0; i < n; i++ {
		var ev Bus
		var ec int
		if i == 0 {
			ev, ec = op.Identity(c), c.Const(false)
		} else {
			ev, ec = res.incl[i-1], res.covered[i-1]
		}
		out[i] = c.MuxBus(ec, op.Combine(c, res.val, ev), ev)
	}
	return out
}

// BuildCSPPRing emits the linear multiplexer-ring implementation of the
// paper's Figure 1 (generalized over the operator): a chain of combine
// stages around the ring, made acyclic with the same wrap construction.
// Depth is Θ(n); the circuit computes the identical function to
// BuildCSPPTree. The pair reproduces the paper's linear-versus-logarithmic
// gate-delay comparison of Figures 1 and 4.
func BuildCSPPRing(c *Circuit, items []ScanItem, op ScanOp) []Bus {
	n := len(items)
	if n == 0 {
		return nil
	}
	// Linear inclusive scan.
	incl := make([]Bus, n)
	covered := make([]int, n)
	for i := 0; i < n; i++ {
		it := items[i]
		if i == 0 {
			incl[0] = c.MuxBus(it.Seg, op.Combine(c, op.Identity(c), it.Val), it.Val)
			covered[0] = it.Seg
			continue
		}
		acc := op.Combine(c, incl[i-1], it.Val)
		incl[i] = c.MuxBus(it.Seg, acc, it.Val)
		covered[i] = c.Or(covered[i-1], it.Seg)
	}
	total := incl[n-1]
	out := make([]Bus, n)
	for i := 0; i < n; i++ {
		var ev Bus
		var ec int
		if i == 0 {
			ev, ec = op.Identity(c), c.Const(false)
		} else {
			ev, ec = incl[i-1], covered[i-1]
		}
		out[i] = c.MuxBus(ec, op.Combine(c, total, ev), ev)
	}
	return out
}

// BuildCSPPMixed emits the Section 5 mixed strategy: balanced scan trees
// up to blocks of blockSize items, then a linear combine across block
// summaries ("one replaces the part of each tree near the root with a
// linear-time prefix circuit. This works well in practice because at some
// point the wire-lengths near the root of the tree become so long that
// the wire-delay is comparable to a gate delay"). Depth is
// Θ(log blockSize + n/blockSize); the function computed is identical to
// BuildCSPPTree and BuildCSPPRing.
func BuildCSPPMixed(c *Circuit, items []ScanItem, op ScanOp, blockSize int) []Bus {
	n := len(items)
	if n == 0 {
		return nil
	}
	if blockSize < 1 {
		blockSize = 1
	}
	// Per-block balanced trees.
	type blk struct {
		res blockResult
		lo  int
	}
	var blocks []blk
	for lo := 0; lo < n; lo += blockSize {
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		blocks = append(blocks, blk{res: scanTree(c, items[lo:hi], op), lo: lo})
	}
	// Linear combine across blocks: carry the (value, anySeg) summary.
	incl := make([]Bus, n)
	covered := make([]int, n)
	carryVal := op.Identity(c)
	carrySeg := c.Const(false)
	for _, b := range blocks {
		for i, bi := range b.res.incl {
			pos := b.lo + i
			fixed := c.MuxBus(b.res.covered[i], op.Combine(c, carryVal, bi), bi)
			incl[pos] = fixed
			covered[pos] = c.Or(b.res.covered[i], carrySeg)
		}
		carryVal = c.MuxBus(b.res.anySeg, op.Combine(c, carryVal, b.res.val), b.res.val)
		carrySeg = c.Or(carrySeg, b.res.anySeg)
	}
	total := incl[n-1]
	out := make([]Bus, n)
	for i := 0; i < n; i++ {
		var ev Bus
		var ec int
		if i == 0 {
			ev, ec = op.Identity(c), c.Const(false)
		} else {
			ev, ec = incl[i-1], covered[i-1]
		}
		out[i] = c.MuxBus(ec, op.Combine(c, total, ev), ev)
	}
	return out
}

// RegisterCSPP builds the complete datapath for one logical register of an
// n-station Ultrascalar I: per-station inputs (modified bit, then W value
// bits) and per-station outputs (the incoming register value seen by the
// station). tree selects Figure 4 (true) or the Figure 1 mux ring (false).
func RegisterCSPP(n, w int, tree bool) *Circuit {
	c := New()
	items := make([]ScanItem, n)
	for i := range items {
		items[i] = ScanItem{Seg: c.NewInput(), Val: c.NewInputBus(w)}
	}
	var outs []Bus
	if tree {
		outs = BuildCSPPTree(c, items, PassScanOp{W: w})
	} else {
		outs = BuildCSPPRing(c, items, PassScanOp{W: w})
	}
	for _, b := range outs {
		c.OutputBus(b)
	}
	return c
}

// Figure5CSPP builds the 1-bit condition-sequencing circuit of the paper's
// Figure 5: per-station inputs (segment bit, condition bit); per-station
// output: whether all earlier stations (from the segment raiser) met the
// condition.
func Figure5CSPP(n int, tree bool) *Circuit {
	c := New()
	items := make([]ScanItem, n)
	for i := range items {
		items[i] = ScanItem{Seg: c.NewInput(), Val: Bus{c.NewInput()}}
	}
	var outs []Bus
	if tree {
		outs = BuildCSPPTree(c, items, AndScanOp{})
	} else {
		outs = BuildCSPPRing(c, items, AndScanOp{})
	}
	for _, b := range outs {
		c.OutputBus(b)
	}
	return c
}
