// Package circuit is a gate-level netlist substrate. It exists so the
// repository can measure, rather than assume, the gate-delay claims of the
// paper: the generated netlists for the Ultrascalar datapaths are evaluated
// for functional correctness against the functional models in
// internal/cspp, and their measured depths reproduce the gate-delay rows of
// the paper's Figure 11 (Θ(log n) for the Ultrascalar I CSPP datapath,
// Θ(n+L) for the linear Ultrascalar II grid, Θ(log(n+L)) for the
// mesh-of-trees grid).
//
// Netlists are acyclic by construction: every gate's operands must already
// exist, so gate IDs are a topological order and evaluation is a single
// pass. The paper's *cyclic* segmented parallel prefix is built acyclically
// with the standard wrap construction (compute the noncyclic segmented
// prefix plus the whole-ring summary, then select), which computes the same
// function whenever at least one segment bit is high — and the datapath
// guarantees the oldest station's segment bit always is.
package circuit

import "fmt"

// Kind identifies a gate type.
type Kind uint8

// Gate kinds. Mux2 selects In[1] when the selector In[0] is low and In[2]
// when it is high.
const (
	Input Kind = iota
	Const0
	Const1
	Buf
	Not
	And2
	Or2
	Xor2
	Mux2
	numKinds
)

var kindNames = [...]string{
	Input: "input", Const0: "const0", Const1: "const1", Buf: "buf",
	Not: "not", And2: "and2", Or2: "or2", Xor2: "xor2", Mux2: "mux2",
}

// String returns the gate kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// arity returns the number of inputs a gate kind consumes.
func (k Kind) arity() int {
	switch k {
	case Input, Const0, Const1:
		return 0
	case Buf, Not:
		return 1
	case And2, Or2, Xor2:
		return 2
	case Mux2:
		return 3
	}
	panic("circuit: bad kind")
}

// delay returns the unit gate delay contributed by a gate kind. Inputs and
// constants are free; every logic gate, including fan-out buffers, costs
// one unit, which is the accounting the paper uses ("gate delays").
func (k Kind) delay() int {
	switch k {
	case Input, Const0, Const1:
		return 0
	default:
		return 1
	}
}

// gate is one netlist node.
type gate struct {
	kind Kind
	in   [3]int32
}

// Circuit is an acyclic gate netlist under construction or analysis.
type Circuit struct {
	gates   []gate
	inputs  []int // ids of Input gates, in declaration order
	outputs []int // designated output nets, in declaration order
}

// New returns an empty circuit.
func New() *Circuit { return &Circuit{} }

// NumGates returns the total number of nodes, including inputs and consts.
func (c *Circuit) NumGates() int { return len(c.gates) }

// NumInputs returns the number of declared inputs.
func (c *Circuit) NumInputs() int { return len(c.inputs) }

// NumOutputs returns the number of designated outputs.
func (c *Circuit) NumOutputs() int { return len(c.outputs) }

func (c *Circuit) add(k Kind, ins ...int) int {
	id := len(c.gates)
	g := gate{kind: k, in: [3]int32{-1, -1, -1}}
	if len(ins) != k.arity() {
		panic(fmt.Sprintf("circuit: %s needs %d inputs, got %d", k, k.arity(), len(ins)))
	}
	for i, x := range ins {
		if x < 0 || x >= id {
			panic(fmt.Sprintf("circuit: operand %d out of range for gate %d", x, id))
		}
		g.in[i] = int32(x)
	}
	c.gates = append(c.gates, g)
	return id
}

// NewInput declares a primary input and returns its net.
func (c *Circuit) NewInput() int {
	id := c.add(Input)
	c.inputs = append(c.inputs, id)
	return id
}

// Const returns a constant net.
func (c *Circuit) Const(v bool) int {
	if v {
		return c.add(Const1)
	}
	return c.add(Const0)
}

// Buf inserts a buffer (identity) gate; used for fan-out trees so that
// fan-out costs gate delay, as in the paper's mesh-of-trees analysis.
func (c *Circuit) Buf(x int) int { return c.add(Buf, x) }

// Not returns the complement of x.
func (c *Circuit) Not(x int) int { return c.add(Not, x) }

// And returns x AND y.
func (c *Circuit) And(x, y int) int { return c.add(And2, x, y) }

// Or returns x OR y.
func (c *Circuit) Or(x, y int) int { return c.add(Or2, x, y) }

// Xor returns x XOR y.
func (c *Circuit) Xor(x, y int) int { return c.add(Xor2, x, y) }

// Mux returns a 2:1 multiplexer: a when sel is low, b when sel is high.
func (c *Circuit) Mux(sel, a, b int) int { return c.add(Mux2, sel, a, b) }

// Output designates a net as a primary output and returns its output index.
func (c *Circuit) Output(x int) int {
	if x < 0 || x >= len(c.gates) {
		panic("circuit: output net out of range")
	}
	c.outputs = append(c.outputs, x)
	return len(c.outputs) - 1
}

// Eval computes the outputs for one input assignment. The length of in
// must equal NumInputs.
func (c *Circuit) Eval(in []bool) []bool {
	if len(in) != len(c.inputs) {
		panic(fmt.Sprintf("circuit: Eval got %d inputs, want %d", len(in), len(c.inputs)))
	}
	vals := make([]bool, len(c.gates))
	next := 0
	for id, g := range c.gates {
		switch g.kind {
		case Input:
			vals[id] = in[next]
			next++
		case Const0:
			vals[id] = false
		case Const1:
			vals[id] = true
		case Buf:
			vals[id] = vals[g.in[0]]
		case Not:
			vals[id] = !vals[g.in[0]]
		case And2:
			vals[id] = vals[g.in[0]] && vals[g.in[1]]
		case Or2:
			vals[id] = vals[g.in[0]] || vals[g.in[1]]
		case Xor2:
			vals[id] = vals[g.in[0]] != vals[g.in[1]]
		case Mux2:
			if vals[g.in[0]] {
				vals[id] = vals[g.in[2]]
			} else {
				vals[id] = vals[g.in[1]]
			}
		}
	}
	out := make([]bool, len(c.outputs))
	for i, id := range c.outputs {
		out[i] = vals[id]
	}
	return out
}

// Depth returns the critical-path length, in unit gate delays, from any
// input or constant to any designated output.
func (c *Circuit) Depth() int {
	depth := make([]int, len(c.gates))
	for id, g := range c.gates {
		d := 0
		for i := 0; i < g.kind.arity(); i++ {
			if dd := depth[g.in[i]]; dd > d {
				d = dd
			}
		}
		depth[id] = d + g.kind.delay()
	}
	max := 0
	for _, id := range c.outputs {
		if depth[id] > max {
			max = depth[id]
		}
	}
	return max
}

// Counts returns the number of gates of each kind.
func (c *Circuit) Counts() map[Kind]int {
	m := make(map[Kind]int)
	for _, g := range c.gates {
		m[g.kind]++
	}
	return m
}

// relative cell areas, in unit-transistor-pair weights, used only for
// relative comparisons between netlists; the vlsi package holds the
// λ-calibrated standard-cell library.
var cellWeight = [numKinds]float64{
	Input: 0, Const0: 0, Const1: 0,
	Buf: 2, Not: 1, And2: 3, Or2: 3, Xor2: 5, Mux2: 5,
}

// AreaWeight returns the total relative cell area of the netlist.
func (c *Circuit) AreaWeight() float64 {
	var a float64
	for _, g := range c.gates {
		a += cellWeight[g.kind]
	}
	return a
}

// Bus is an ordered group of nets representing a multi-bit value, least
// significant bit first.
type Bus []int

// NewInputBus declares w primary inputs as a bus.
func (c *Circuit) NewInputBus(w int) Bus {
	b := make(Bus, w)
	for i := range b {
		b[i] = c.NewInput()
	}
	return b
}

// ConstBus returns a bus of constants holding the low w bits of v.
func (c *Circuit) ConstBus(v uint64, w int) Bus {
	b := make(Bus, w)
	for i := range b {
		b[i] = c.Const(v>>uint(i)&1 == 1)
	}
	return b
}

// OutputBus designates every net of the bus as an output.
func (c *Circuit) OutputBus(b Bus) {
	for _, x := range b {
		c.Output(x)
	}
}

// MuxBus multiplexes two buses of equal width: a when sel is low.
func (c *Circuit) MuxBus(sel int, a, b Bus) Bus {
	if len(a) != len(b) {
		panic("circuit: MuxBus width mismatch")
	}
	out := make(Bus, len(a))
	for i := range a {
		out[i] = c.Mux(sel, a[i], b[i])
	}
	return out
}

// AndN returns the conjunction of the nets via a balanced tree of depth
// ceil(log2 n).
func (c *Circuit) AndN(xs []int) int { return c.reduce(xs, c.And, true) }

// OrN returns the disjunction of the nets via a balanced tree.
func (c *Circuit) OrN(xs []int) int { return c.reduce(xs, c.Or, false) }

func (c *Circuit) reduce(xs []int, op func(a, b int) int, identity bool) int {
	switch len(xs) {
	case 0:
		return c.Const(identity)
	case 1:
		return xs[0]
	}
	mid := len(xs) / 2
	return op(c.reduce(xs[:mid], op, identity), c.reduce(xs[mid:], op, identity))
}

// Eq returns the equality of two buses (XNOR per bit, AND tree), the
// comparator at each cross-point of the Ultrascalar II grid.
func (c *Circuit) Eq(a, b Bus) int {
	if len(a) != len(b) {
		panic("circuit: Eq width mismatch")
	}
	bits := make([]int, len(a))
	for i := range a {
		bits[i] = c.Not(c.Xor(a[i], b[i]))
	}
	return c.AndN(bits)
}

// Fanout returns k copies of the net through a balanced buffer tree, so
// that driving k consumers costs ceil(log2 k) gate delays — the fan-out
// accounting of the paper's mesh-of-trees construction (Section 4:
// "we fan them out through a tree of buffers").
func (c *Circuit) Fanout(x int, k int) []int {
	if k <= 0 {
		return nil
	}
	if k == 1 {
		return []int{c.Buf(x)}
	}
	left := c.Fanout(c.Buf(x), (k+1)/2)
	right := c.Fanout(c.Buf(x), k/2)
	return append(left, right...)
}

// FanoutBus fans out every bit of a bus k ways; result[i] is the i-th copy.
func (c *Circuit) FanoutBus(b Bus, k int) []Bus {
	copies := make([]Bus, k)
	for i := range copies {
		copies[i] = make(Bus, len(b))
	}
	for bit, x := range b {
		for i, cp := range c.Fanout(x, k) {
			copies[i][bit] = cp
		}
	}
	return copies
}
