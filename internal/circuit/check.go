package circuit

// Netlist design-rule checks. The generators in this package are trusted
// to emit well-formed netlists because add() enforces topological gate
// IDs — but that trust is structural, not semantic. Check re-derives the
// well-formedness properties from the gate array itself (so hand-built
// or mutated netlists are caught) and layers on the semantic rules a
// silicon flow would apply: no combinational cycles, no floating primary
// inputs, bounded fan-out, and — the strongest rule — gate counts that
// match the closed-form recurrences of the paper's complexity analysis
// exactly. A netlist that passes Check is the circuit the analysis
// reasons about, not merely one that happens to simulate correctly.

import "fmt"

// Violation is one design-rule failure.
type Violation struct {
	Rule   string // "operand", "output", "cycle", "floating-input", "fanout", "dead", "gate-count"
	Detail string
}

// String formats the violation as rule: detail.
func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// CheckOptions configures the optional design rules. The structural
// rules (operand discipline, acyclicity, floating inputs) always run; a
// zero value skips each optional rule.
type CheckOptions struct {
	// MaxFanout, when positive, bounds the number of consumers of any
	// net. The bound is family-specific: the linear Ultrascalar II grid
	// genuinely broadcasts each result row to Θ(n+L) columns, while a
	// CSPP's worst net drives Θ(n) wrap multiplexers.
	MaxFanout int
	// MaxDead, when positive, bounds the absolute number of logic gates
	// from which no primary output is reachable. The generators leave a
	// little dead logic by design — a scan tree strands its root-summary
	// gates at every merge level, like the trimmed cells of a synthesis
	// run — so the bound is small, not zero.
	MaxDead int
	// MaxDeadFraction, when positive, bounds the dead logic as a
	// fraction instead; the right form for the grids, whose dead share
	// stays constant while the absolute count grows with the netlist.
	MaxDeadFraction float64
	// ExpectedGates, when positive, requires NumGates to equal the
	// closed-form count from the construction recurrence.
	ExpectedGates int
}

// CheckResult reports the measured netlist statistics and any rule
// violations.
type CheckResult struct {
	Gates, Inputs, Outputs int
	MaxFanout              int
	DeadGates              int // logic gates with no path to an output
	Violations             []Violation
}

// OK reports whether every design rule passed.
func (r CheckResult) OK() bool { return len(r.Violations) == 0 }

// Check runs the design rules against the netlist.
func (c *Circuit) Check(opt CheckOptions) CheckResult {
	n := len(c.gates)
	res := CheckResult{Gates: n, Inputs: len(c.inputs), Outputs: len(c.outputs)}
	violate := func(rule, format string, args ...any) {
		res.Violations = append(res.Violations, Violation{Rule: rule, Detail: fmt.Sprintf(format, args...)})
	}

	// Operand discipline: used slots reference existing gates, unused
	// slots stay unset. Range errors are reported here and the offending
	// edges skipped below, so the remaining rules still run.
	for id, g := range c.gates {
		ar := g.kind.arity()
		for i := 0; i < 3; i++ {
			x := int(g.in[i])
			switch {
			case i < ar && (x < 0 || x >= n):
				violate("operand", "gate %d (%s): operand %d = %d is outside the netlist", id, g.kind, i, x)
			case i >= ar && x != -1:
				violate("operand", "gate %d (%s): spurious operand in unused slot %d", id, g.kind, i)
			}
		}
	}
	for i, id := range c.outputs {
		if id < 0 || id >= n {
			violate("output", "output %d references net %d, outside the netlist", i, id)
		}
	}

	// Combinational cycles. add() makes IDs a topological order, so the
	// check is a single backward-edge scan — but on a mutated netlist a
	// forward operand is exactly a wire that closes a loop through the
	// evaluation order, so it is reported as a cycle.
	for id, g := range c.gates {
		for i := 0; i < g.kind.arity(); i++ {
			x := int(g.in[i])
			if x >= id && x < n {
				violate("cycle", "gate %d (%s) depends on gate %d, closing a combinational loop", id, g.kind, x)
			}
		}
	}

	// Fan-out: consumers per net, counting each operand use.
	fanout := make([]int, n)
	for _, g := range c.gates {
		for i := 0; i < g.kind.arity(); i++ {
			if x := int(g.in[i]); 0 <= x && x < n {
				fanout[x]++
			}
		}
	}
	for id, f := range fanout {
		if f > res.MaxFanout {
			res.MaxFanout = f
		}
		if opt.MaxFanout > 0 && f > opt.MaxFanout {
			violate("fanout", "net %d (%s) drives %d consumers, bound is %d", id, c.gates[id].kind, f, opt.MaxFanout)
		}
	}

	// Floating primary inputs: an input no gate reads and no output
	// designates is a disconnected port.
	isOutput := make(map[int]bool, len(c.outputs))
	for _, id := range c.outputs {
		isOutput[id] = true
	}
	for _, id := range c.inputs {
		if fanout[id] == 0 && !isOutput[id] {
			violate("floating-input", "input net %d has no consumers", id)
		}
	}

	// Dead logic: gates with no path to any primary output, found by
	// reverse reachability. Primary inputs are excluded (they are ports,
	// covered above); constants and logic gates count.
	live := make([]bool, n)
	for _, id := range c.outputs {
		if 0 <= id && id < n {
			live[id] = true
		}
	}
	for id := n - 1; id >= 0; id-- {
		if !live[id] {
			continue
		}
		g := c.gates[id]
		for i := 0; i < g.kind.arity(); i++ {
			if x := int(g.in[i]); 0 <= x && x < id {
				live[x] = true
			}
		}
	}
	logic := 0
	for id, g := range c.gates {
		if g.kind == Input {
			continue
		}
		logic++
		if !live[id] {
			res.DeadGates++
		}
	}
	if opt.MaxDead > 0 && res.DeadGates > opt.MaxDead {
		violate("dead", "%d logic gates are unreachable from outputs, bound is %d",
			res.DeadGates, opt.MaxDead)
	}
	if opt.MaxDeadFraction > 0 && logic > 0 {
		if frac := float64(res.DeadGates) / float64(logic); frac > opt.MaxDeadFraction {
			violate("dead", "%d of %d logic gates are unreachable from outputs (%.1f%%, bound %.1f%%)",
				res.DeadGates, logic, 100*frac, 100*opt.MaxDeadFraction)
		}
	}

	// Gate-count cross-check against the construction recurrence.
	if opt.ExpectedGates > 0 && n != opt.ExpectedGates {
		violate("gate-count", "netlist has %d gates, construction recurrence gives %d", n, opt.ExpectedGates)
	}
	return res
}

// Closed-form gate counts. Each function mirrors its generator's
// emission order term by term, so the counts are exact, not asymptotic;
// TestDRCExpectedCounts holds them equal to the built netlists. Together
// with Figure 11's measured depths they pin both coordinates of the
// paper's complexity claims: depth (time) and gate count (area).

// countScanTree is scanTree's gate count for n items under an operator
// emitting combineGates per Combine and identityGates per Identity, with
// value width w.
func countScanTree(n, w, combineGates, identityGates int) int {
	if n == 1 {
		// Identity + Combine(identity, val) + MuxBus.
		return identityGates + combineGates + w
	}
	half := n / 2
	merge := (n-half)*(combineGates+w+1) + // per right position: Combine + MuxBus + covered Or
		combineGates + w + // block val: Combine + MuxBus
		1 // anySeg Or
	return countScanTree(half, w, combineGates, identityGates) +
		countScanTree(n-half, w, combineGates, identityGates) +
		merge
}

// countWrap is the shared wrap stage of BuildCSPPTree/Ring/Mixed: one
// Identity + Const(false) for position 0, then Combine + MuxBus per
// position.
func countWrap(n, w, combineGates, identityGates int) int {
	return identityGates + 1 + n*(combineGates+w)
}

// ExpectedGatesRegisterCSPP returns RegisterCSPP's exact gate count:
// n·(1+w) inputs plus the PassScanOp scan network (Combine emits no
// gates, Identity emits w constants).
func ExpectedGatesRegisterCSPP(n, w int, tree bool) int {
	inputs := n * (1 + w)
	if tree {
		return inputs + countScanTree(n, w, 0, w) + countWrap(n, w, 0, w)
	}
	// BuildCSPPRing: position 0 emits Identity + MuxBus, each later
	// position MuxBus + covered Or; then the wrap stage.
	scan := (w + w) + (n-1)*(w+1)
	return inputs + scan + countWrap(n, w, 0, w)
}

// ExpectedGatesFigure5 returns Figure5CSPP's exact gate count: 2n inputs
// plus the AndScanOp network (Combine is one AND, Identity one constant,
// width 1).
func ExpectedGatesFigure5(n int, tree bool) int {
	inputs := 2 * n
	if tree {
		return inputs + countScanTree(n, 1, 1, 1) + countWrap(n, 1, 1, 1)
	}
	scan := (1 + 1 + 1) + (n-1)*(1+1+1)
	return inputs + scan + countWrap(n, 1, 1, 1)
}

// countEq is Eq's gate count for buses of width dw: XNOR per bit plus a
// balanced AND reduction.
func countEq(dw int) int { return 2*dw + (dw - 1) }

// countFanout is Fanout's buffer count for k copies:
// F(1) = 1, F(k) = F(⌈k/2⌉) + F(⌊k/2⌋) + 2.
func countFanout(k int) int {
	if k <= 0 {
		return 0
	}
	if k == 1 {
		return 1
	}
	return countFanout((k+1)/2) + countFanout(k/2) + 2
}

// countReduce is column's reduction-tree count over k rows, each merge
// emitting one OR and a (w+1)-wide MuxBus; the recursion splits at
// mid = ⌊k/2⌋.
func countReduce(k, w int) int {
	if k <= 1 {
		return 0
	}
	mid := k / 2
	return countReduce(mid, w) + countReduce(k-mid, w) + 1 + (w + 1)
}

// countColumn is column's gate count over k rows for value width w and
// register-number width dw.
func countColumn(k, w, dw int, tree bool) int {
	if !tree {
		// ConstBus(0, w+1), then per row Eq + And + MuxBus.
		return (w + 1) + k*(countEq(dw)+1+(w+1))
	}
	// FanoutBus of the wanted number, per row Eq + And, then the
	// segmented reduction.
	return dw*countFanout(k) + k*(countEq(dw)+1) + countReduce(k, w)
}

// ExpectedGatesUltra2Grid returns Ultra2Grid's exact gate count,
// accumulated in the generator's emission order: initial register rows,
// then per station two argument columns over the rows seen so far, then
// one outgoing column per logical register over all rows.
func ExpectedGatesUltra2Grid(n, l, w int, tree bool) int {
	dw := log2ceil(l)
	total := l * (dw + 1 + (w + 1)) // ConstBus(r) + Const(true) + value inputs
	for s := 0; s < n; s++ {
		total += dw + 1 + (w + 1)                         // dest, writes, result inputs
		total += 2 * (dw + countColumn(l+s, w, dw, tree)) // argNum inputs + column
	}
	total += l * (dw + countColumn(l+n, w, dw, tree)) // ConstBus(r) + column
	return total
}

// ExpectedGatesHybridModified returns HybridModifiedBits' exact gate
// count. The OR series and the OR tree emit the same n−1 gates; only
// their depth differs.
func ExpectedGatesHybridModified(n, l int, _ bool) int {
	dw := log2ceil(l)
	inputs := n * (dw + 1)
	perReg := n*(dw+countEq(dw)+1) + (n - 1) // ConstBus(r) + Eq + And per station, then the OR reduction
	return inputs + l*perReg
}

// DRCReport is the result of checking one generated netlist family
// member against its family's design rules.
type DRCReport struct {
	Name    string
	N, L, W int
	Result  CheckResult
}

// OK reports whether the member passed.
func (r DRCReport) OK() bool { return r.Result.OK() }

// csppFanoutBound is the CSPP fan-out budget: the wrap summary drives
// one multiplexer per station (n), and a value or segment bit threads
// through at most a few multiplexers per bit of width beyond that (the
// pass operator forwards the same net up the tree as the block value).
func csppFanoutBound(n, w int) int { return n + 3*w + 2 }

// csppDeadBound is the CSPP dead-logic budget: every merge level of the
// scan tree strands one block summary (w value muxes, a covered OR and
// the anySeg OR) that the wrap stage never consumes.
func csppDeadBound(n, w int) int { return (w+2)*log2ceil(n) + 1 }

// DRCRegisterCSPP builds and checks the Ultrascalar I register datapath.
func DRCRegisterCSPP(n, w int, tree bool) DRCReport {
	name := "cspp-ring"
	if tree {
		name = "cspp-tree"
	}
	c := RegisterCSPP(n, w, tree)
	return DRCReport{Name: name, N: n, W: w, Result: c.Check(CheckOptions{
		MaxFanout:     csppFanoutBound(n, w),
		MaxDead:       csppDeadBound(n, w),
		ExpectedGates: ExpectedGatesRegisterCSPP(n, w, tree),
	})}
}

// DRCFigure5 builds and checks the Figure 5 condition-sequencing CSPP.
func DRCFigure5(n int, tree bool) DRCReport {
	name := "figure5-ring"
	if tree {
		name = "figure5-tree"
	}
	c := Figure5CSPP(n, tree)
	return DRCReport{Name: name, N: n, W: 1, Result: c.Check(CheckOptions{
		MaxFanout:     csppFanoutBound(n, 1),
		MaxDead:       csppDeadBound(n, 1),
		ExpectedGates: ExpectedGatesFigure5(n, tree),
	})}
}

// DRCUltra2Grid builds and checks the Ultrascalar II register datapath.
// Both variants genuinely broadcast every result row to every later
// column — 2(n+L) consumers in the worst case — since only the wanted
// register numbers go through fan-out trees; the +4 covers the row's
// writes flag feeding the same columns' match gates.
func DRCUltra2Grid(n, l, w int, tree bool) DRCReport {
	name := "ultra2-linear"
	if tree {
		name = "ultra2-tree"
	}
	c, _ := Ultra2Grid(n, l, w, tree)
	return DRCReport{Name: name, N: n, L: l, W: w, Result: c.Check(CheckOptions{
		MaxFanout: 2*(n+l) + 4,
		// Each tree column strands its reduction root's match bit; the
		// share stays well under 5% at every size.
		MaxDeadFraction: 0.05,
		ExpectedGates:   ExpectedGatesUltra2Grid(n, l, w, tree),
	})}
}

// DRCHybridModified builds and checks the hybrid's modified-bit OR
// plane. Each station's writes flag and destination bits feed one match
// per logical register.
func DRCHybridModified(n, l int, tree bool) DRCReport {
	name := "hybrid-or-series"
	if tree {
		name = "hybrid-or-tree"
	}
	c := HybridModifiedBits(n, l, tree)
	return DRCReport{Name: name, N: n, L: l, W: 1, Result: c.Check(CheckOptions{
		MaxFanout:     l + 2,
		MaxDead:       1, // the OR plane consumes everything it builds
		ExpectedGates: ExpectedGatesHybridModified(n, l, tree),
	})}
}

// DRCSuite checks every generated family at each station count, with the
// paper's empirical register file (L = 16 visible here for tractable
// grids, W = 8 data bits).
func DRCSuite(sizes []int) []DRCReport {
	const l, w = 16, 8
	var out []DRCReport
	for _, n := range sizes {
		for _, tree := range []bool{false, true} {
			out = append(out,
				DRCRegisterCSPP(n, w, tree),
				DRCFigure5(n, tree),
				DRCUltra2Grid(n, l, w, tree),
				DRCHybridModified(n, l, tree),
			)
		}
	}
	return out
}
