package circuit

import (
	"math/rand"
	"testing"

	"ultrascalar/internal/cspp"
)

func TestPrimitiveGates(t *testing.T) {
	c := New()
	a, b := c.NewInput(), c.NewInput()
	sel := c.NewInput()
	c.Output(c.And(a, b))
	c.Output(c.Or(a, b))
	c.Output(c.Xor(a, b))
	c.Output(c.Not(a))
	c.Output(c.Buf(a))
	c.Output(c.Mux(sel, a, b))
	c.Output(c.Const(true))
	c.Output(c.Const(false))
	for _, tc := range []struct {
		in   []bool
		want []bool
	}{
		{[]bool{false, false, false}, []bool{false, false, false, true, false, false, true, false}},
		{[]bool{true, false, false}, []bool{false, true, true, false, true, true, true, false}},
		{[]bool{true, true, true}, []bool{true, true, false, false, true, true, true, false}},
		{[]bool{false, true, true}, []bool{false, true, true, true, false, true, true, false}},
	} {
		got := c.Eval(tc.in)
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("in %v out %d: got %v want %v", tc.in, i, got[i], tc.want[i])
			}
		}
	}
	if c.NumInputs() != 3 || c.NumOutputs() != 8 {
		t.Errorf("inputs %d outputs %d", c.NumInputs(), c.NumOutputs())
	}
	if c.NumGates() == 0 || c.AreaWeight() <= 0 {
		t.Error("gate count / area should be positive")
	}
}

func TestConstructionPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("forward ref", func() {
		c := New()
		c.And(0, 1) // no gates exist yet
	})
	mustPanic("bad output", func() {
		c := New()
		c.Output(5)
	})
	mustPanic("eval arity", func() {
		c := New()
		c.NewInput()
		c.Eval(nil)
	})
	mustPanic("muxbus width", func() {
		c := New()
		c.MuxBus(c.Const(false), c.ConstBus(0, 2), c.ConstBus(0, 3))
	})
	mustPanic("eq width", func() {
		c := New()
		c.Eq(c.ConstBus(0, 2), c.ConstBus(0, 3))
	})
}

func TestReduceTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 3, 7, 16, 33} {
		c := New()
		xs := make([]int, n)
		for i := range xs {
			xs[i] = c.NewInput()
		}
		c.Output(c.AndN(xs))
		c.Output(c.OrN(xs))
		for trial := 0; trial < 20; trial++ {
			in := make([]bool, n)
			wantAnd, wantOr := true, false
			for i := range in {
				in[i] = rng.Intn(2) == 0
				wantAnd = wantAnd && in[i]
				wantOr = wantOr || in[i]
			}
			got := c.Eval(in)
			if got[0] != wantAnd || got[1] != wantOr {
				t.Fatalf("n=%d in=%v got=%v want=[%v %v]", n, in, got, wantAnd, wantOr)
			}
		}
	}
}

func TestEqComparator(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := 6
	c := New()
	a, b := c.NewInputBus(w), c.NewInputBus(w)
	c.Output(c.Eq(a, b))
	for trial := 0; trial < 100; trial++ {
		x, y := rng.Uint64()&63, rng.Uint64()&63
		if trial%3 == 0 {
			y = x
		}
		in := make([]bool, 0, 2*w)
		for i := 0; i < w; i++ {
			in = append(in, x>>uint(i)&1 == 1)
		}
		for i := 0; i < w; i++ {
			in = append(in, y>>uint(i)&1 == 1)
		}
		if got := c.Eval(in)[0]; got != (x == y) {
			t.Fatalf("Eq(%d,%d) = %v", x, y, got)
		}
	}
	// Comparator depth is logarithmic in width: xnor (2) + AND tree.
	if d := c.Depth(); d > 2+log2ceil(w)+1 {
		t.Errorf("Eq depth %d too deep for width %d", d, w)
	}
}

func TestFanout(t *testing.T) {
	for _, k := range []int{1, 2, 3, 8, 31} {
		c := New()
		x := c.NewInput()
		for _, cp := range c.Fanout(x, k) {
			c.Output(cp)
		}
		if c.NumOutputs() != k {
			t.Fatalf("Fanout(%d) produced %d copies", k, c.NumOutputs())
		}
		for _, v := range []bool{false, true} {
			for i, got := range c.Eval([]bool{v}) {
				if got != v {
					t.Errorf("k=%d copy %d = %v, want %v", k, i, got, v)
				}
			}
		}
		// Depth of a balanced buffer tree: about ceil(log2 k) + 1.
		if d := c.Depth(); d > log2ceil(k)+2 {
			t.Errorf("Fanout(%d) depth %d too deep", k, d)
		}
	}
	if got := New().Fanout(0, 0); got != nil {
		t.Error("Fanout k=0 should be nil")
	}
}

// evalRegisterCSPP drives a RegisterCSPP circuit with station states and
// decodes the per-station W-bit outputs.
func evalRegisterCSPP(c *Circuit, n, w int, mod []bool, vals []uint64) []uint64 {
	in := make([]bool, 0, n*(1+w))
	for i := 0; i < n; i++ {
		in = append(in, mod[i])
		for b := 0; b < w; b++ {
			in = append(in, vals[i]>>uint(b)&1 == 1)
		}
	}
	raw := c.Eval(in)
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		for b := 0; b < w; b++ {
			if raw[i*w+b] {
				out[i] |= 1 << uint(b)
			}
		}
	}
	return out
}

// TestRegisterCSPPMatchesFunctional checks both the Figure 1 ring netlist
// and the Figure 4 tree netlist against the functional CSPP model for
// random station states.
func TestRegisterCSPPMatchesFunctional(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 3, 5, 8, 16} {
		w := 6
		ring := RegisterCSPP(n, w, false)
		tree := RegisterCSPP(n, w, true)
		for trial := 0; trial < 40; trial++ {
			mod := make([]bool, n)
			vals := make([]uint64, n)
			oldest := rng.Intn(n)
			for i := range mod {
				mod[i] = rng.Intn(3) == 0
				vals[i] = rng.Uint64() & 63
			}
			mod[oldest] = true // datapath invariant: oldest always modifies

			// Functional reference via cspp with value payloads.
			items := make([]cspp.Elem[uint64], n)
			for i := range items {
				items[i] = cspp.Elem[uint64]{Seg: mod[i], Val: vals[i]}
			}
			want := cspp.RingExclusive[uint64](items, passU64{})

			for name, c := range map[string]*Circuit{"ring": ring, "tree": tree} {
				got := evalRegisterCSPP(c, n, w, mod, vals)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s n=%d trial=%d station %d: got %d want %d (mod=%v vals=%v)",
							name, n, trial, i, got[i], want[i], mod, vals)
					}
				}
			}
		}
	}
}

type passU64 struct{}

func (passU64) Combine(a, _ uint64) uint64 { return a }
func (passU64) Identity() uint64           { return 0 }

// TestFigure5CircuitMatchesFunctional checks the 1-bit AND CSPP netlists
// against the functional ring for random conditions.
func TestFigure5CircuitMatchesFunctional(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 2, 4, 8, 13} {
		ring := Figure5CSPP(n, false)
		tree := Figure5CSPP(n, true)
		for trial := 0; trial < 40; trial++ {
			segs := make([]bool, n)
			conds := make([]bool, n)
			segs[rng.Intn(n)] = true
			for i := range conds {
				conds[i] = rng.Intn(2) == 0
				if rng.Intn(4) == 0 {
					segs[i] = true
				}
			}
			items := make([]cspp.Elem[bool], n)
			in := make([]bool, 0, 2*n)
			for i := 0; i < n; i++ {
				items[i] = cspp.Elem[bool]{Seg: segs[i], Val: conds[i]}
				in = append(in, segs[i], conds[i])
			}
			want := cspp.RingExclusive[bool](items, cspp.AndOp{})
			for name, c := range map[string]*Circuit{"ring": ring, "tree": tree} {
				got := c.Eval(in)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s n=%d station %d: got %v want %v (segs=%v conds=%v)",
							name, n, i, got[i], want[i], segs, conds)
					}
				}
			}
		}
	}
}

// TestMixedCSPPMatchesAndSitsBetween: the Section 5 mixed strategy
// computes the identical function with depth between the tree and the
// ring.
func TestMixedCSPPMatchesAndSitsBetween(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n, w := 32, 4
	build := func(f func(c *Circuit, items []ScanItem) []Bus) *Circuit {
		c := New()
		items := make([]ScanItem, n)
		for i := range items {
			items[i] = ScanItem{Seg: c.NewInput(), Val: c.NewInputBus(w)}
		}
		for _, o := range f(c, items) {
			c.OutputBus(o)
		}
		return c
	}
	tree := build(func(c *Circuit, it []ScanItem) []Bus {
		return BuildCSPPTree(c, it, PassScanOp{W: w})
	})
	ring := build(func(c *Circuit, it []ScanItem) []Bus {
		return BuildCSPPRing(c, it, PassScanOp{W: w})
	})
	mixed := build(func(c *Circuit, it []ScanItem) []Bus {
		return BuildCSPPMixed(c, it, PassScanOp{W: w}, 8)
	})
	for trial := 0; trial < 50; trial++ {
		in := make([]bool, 0, n*(1+w))
		seg := rng.Intn(n)
		for i := 0; i < n; i++ {
			in = append(in, i == seg || rng.Intn(4) == 0)
			for b := 0; b < w; b++ {
				in = append(in, rng.Intn(2) == 0)
			}
		}
		a, b, m := tree.Eval(in), ring.Eval(in), mixed.Eval(in)
		for i := range a {
			if a[i] != m[i] || b[i] != m[i] {
				t.Fatalf("trial %d out %d: tree %v ring %v mixed %v", trial, i, a[i], b[i], m[i])
			}
		}
	}
	dt, dr, dm := tree.Depth(), ring.Depth(), mixed.Depth()
	if !(dt <= dm && dm <= dr) {
		t.Errorf("depth ordering tree %d <= mixed %d <= ring %d violated", dt, dm, dr)
	}
	// Degenerate block sizes behave.
	one := build(func(c *Circuit, it []ScanItem) []Bus {
		return BuildCSPPMixed(c, it, PassScanOp{W: w}, 0)
	})
	if one.NumOutputs() != n*w {
		t.Error("blockSize<1 should clamp")
	}
}

// TestCSPPDepthScaling verifies the paper's headline gate-delay claims:
// the ring datapath has Θ(n) depth, the tree datapath Θ(log n).
func TestCSPPDepthScaling(t *testing.T) {
	prevTree := 0
	for _, n := range []int{4, 16, 64, 256, 1024} {
		ring := Figure5CSPP(n, false)
		tree := Figure5CSPP(n, true)
		dRing, dTree := ring.Depth(), tree.Depth()
		if dRing < n/2 {
			t.Errorf("n=%d: ring depth %d should be Θ(n)", n, dRing)
		}
		// Tree depth <= c*log2(n) + c' with small constants.
		logn := log2ceil(n)
		if dTree > 4*logn+8 {
			t.Errorf("n=%d: tree depth %d exceeds O(log n) bound (%d)", n, dTree, 4*logn+8)
		}
		if dTree < prevTree {
			t.Errorf("tree depth should be nondecreasing: n=%d depth %d < %d", n, dTree, prevTree)
		}
		prevTree = dTree
		if dTree >= dRing && n >= 16 {
			t.Errorf("n=%d: tree depth %d should beat ring depth %d", n, dTree, dRing)
		}
	}
}

// refUltra2 is the functional model of the Ultrascalar II grid search.
type u2station struct {
	dest   uint64
	writes bool
	result uint64
	args   [2]uint64
}

func refUltra2(l int, init []uint64, stations []u2station) (args [][2]uint64, regs []uint64) {
	type rrow struct {
		num    uint64
		writes bool
		val    uint64
	}
	rows := make([]rrow, 0, l+len(stations))
	for r := 0; r < l; r++ {
		rows = append(rows, rrow{num: uint64(r), writes: true, val: init[r]})
	}
	lookup := func(want uint64) uint64 {
		var v uint64
		for _, r := range rows {
			if r.writes && r.num == want {
				v = r.val
			}
		}
		return v
	}
	args = make([][2]uint64, len(stations))
	for s, st := range stations {
		args[s][0] = lookup(st.args[0])
		args[s][1] = lookup(st.args[1])
		rows = append(rows, rrow{num: st.dest, writes: st.writes, val: st.result})
	}
	regs = make([]uint64, l)
	for r := 0; r < l; r++ {
		regs[r] = lookup(uint64(r))
	}
	return args, regs
}

func driveUltra2(c *Circuit, lay Ultra2Layout, init []uint64, stations []u2station) (args [][2]uint64, regs []uint64) {
	pushBits := func(in []bool, v uint64, w int) []bool {
		for b := 0; b < w; b++ {
			in = append(in, v>>uint(b)&1 == 1)
		}
		return in
	}
	var in []bool
	for r := 0; r < lay.L; r++ {
		in = pushBits(in, init[r], lay.W+1)
	}
	for _, st := range stations {
		in = pushBits(in, st.dest, lay.DestW)
		in = append(in, st.writes)
		in = pushBits(in, st.result, lay.W+1)
		in = pushBits(in, st.args[0], lay.DestW)
		in = pushBits(in, st.args[1], lay.DestW)
	}
	raw := c.Eval(in)
	pull := func(off int) uint64 {
		var v uint64
		for b := 0; b < lay.W+1; b++ {
			if raw[off+b] {
				v |= 1 << uint(b)
			}
		}
		return v
	}
	args = make([][2]uint64, lay.N)
	for s := 0; s < lay.N; s++ {
		args[s][0] = pull((2*s + 0) * (lay.W + 1))
		args[s][1] = pull((2*s + 1) * (lay.W + 1))
	}
	regs = make([]uint64, lay.L)
	base := lay.N * 2 * (lay.W + 1)
	for r := 0; r < lay.L; r++ {
		regs[r] = pull(base + r*(lay.W+1))
	}
	return args, regs
}

// TestUltra2GridMatchesReference checks both grid variants against the
// functional model on random programs.
func TestUltra2GridMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, cfg := range []struct{ n, l, w int }{
		{1, 2, 4}, {2, 4, 4}, {4, 4, 6}, {4, 8, 6}, {6, 5, 5}, {8, 8, 8},
	} {
		for _, tree := range []bool{false, true} {
			c, lay := Ultra2Grid(cfg.n, cfg.l, cfg.w, tree)
			if c.NumInputs() != lay.NumInputs() || c.NumOutputs() != lay.NumOutputs() {
				t.Fatalf("cfg %+v tree=%v: layout counts disagree: %d/%d vs %d/%d",
					cfg, tree, c.NumInputs(), c.NumOutputs(), lay.NumInputs(), lay.NumOutputs())
			}
			for trial := 0; trial < 15; trial++ {
				init := make([]uint64, cfg.l)
				for r := range init {
					init[r] = rng.Uint64() & (1<<uint(cfg.w+1) - 1)
				}
				stations := make([]u2station, cfg.n)
				for s := range stations {
					stations[s] = u2station{
						dest:   uint64(rng.Intn(cfg.l)),
						writes: rng.Intn(4) != 0,
						result: rng.Uint64() & (1<<uint(cfg.w+1) - 1),
						args:   [2]uint64{uint64(rng.Intn(cfg.l)), uint64(rng.Intn(cfg.l))},
					}
				}
				wantArgs, wantRegs := refUltra2(cfg.l, init, stations)
				gotArgs, gotRegs := driveUltra2(c, lay, init, stations)
				for s := range wantArgs {
					if gotArgs[s] != wantArgs[s] {
						t.Fatalf("cfg %+v tree=%v station %d args: got %v want %v",
							cfg, tree, s, gotArgs[s], wantArgs[s])
					}
				}
				for r := range wantRegs {
					if gotRegs[r] != wantRegs[r] {
						t.Fatalf("cfg %+v tree=%v reg %d: got %d want %d",
							cfg, tree, r, gotRegs[r], wantRegs[r])
					}
				}
			}
		}
	}
}

// TestUltra2DepthScaling verifies the Figure 7 vs Figure 8 gate-delay
// claims: Θ(n+L) for the linear grid, Θ(log(n+L)) for the mesh-of-trees.
func TestUltra2DepthScaling(t *testing.T) {
	l, w := 8, 8
	var linDepths, treeDepths []int
	for _, n := range []int{4, 8, 16, 32} {
		lin, _ := Ultra2Grid(n, l, w, false)
		tr, _ := Ultra2Grid(n, l, w, true)
		linDepths = append(linDepths, lin.Depth())
		treeDepths = append(treeDepths, tr.Depth())
	}
	// Linear depth grows linearly: doubling n beyond L roughly doubles it.
	if linDepths[3] < linDepths[1]+16 {
		t.Errorf("linear grid depth not growing linearly: %v", linDepths)
	}
	// Tree depth grows by O(1) per doubling.
	for i := 1; i < len(treeDepths); i++ {
		if treeDepths[i]-treeDepths[i-1] > 6 {
			t.Errorf("mesh-of-trees depth growing too fast: %v", treeDepths)
		}
	}
	if treeDepths[3] >= linDepths[3] {
		t.Errorf("mesh-of-trees depth %d should beat linear %d at n=32", treeDepths[3], linDepths[3])
	}
}

func TestHybridModifiedBits(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n, l := 6, 8
	dw := log2ceil(l)
	for _, tree := range []bool{false, true} {
		c := HybridModifiedBits(n, l, tree)
		for trial := 0; trial < 30; trial++ {
			dests := make([]uint64, n)
			writes := make([]bool, n)
			var in []bool
			for s := 0; s < n; s++ {
				dests[s] = uint64(rng.Intn(l))
				writes[s] = rng.Intn(2) == 0
				for b := 0; b < dw; b++ {
					in = append(in, dests[s]>>uint(b)&1 == 1)
				}
				in = append(in, writes[s])
			}
			got := c.Eval(in)
			for r := 0; r < l; r++ {
				want := false
				for s := 0; s < n; s++ {
					if writes[s] && dests[s] == uint64(r) {
						want = true
					}
				}
				if got[r] != want {
					t.Fatalf("tree=%v reg %d: got %v want %v", tree, r, got[r], want)
				}
			}
		}
	}
}

// TestCSPPGateCounts sanity-checks the O(nW) scaling of the register CSPP
// netlist: gates per station should be roughly constant as n grows.
func TestCSPPGateCounts(t *testing.T) {
	w := 33 // 32-bit value + ready, as in the paper's empirical study
	g16 := RegisterCSPP(16, w, true).NumGates()
	g64 := RegisterCSPP(64, w, true).NumGates()
	ratio := float64(g64) / float64(g16)
	if ratio < 3.5 || ratio > 5.0 {
		t.Errorf("gate count should scale ~linearly: 16->%d, 64->%d (ratio %.2f)", g16, g64, ratio)
	}
}

func BenchmarkBuildRegisterCSPP64x33(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RegisterCSPP(64, 33, true)
	}
}

func BenchmarkEvalUltra2Grid8(b *testing.B) {
	c, lay := Ultra2Grid(8, 8, 8, true)
	in := make([]bool, lay.NumInputs())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Eval(in)
	}
}
