package circuit

// Fat-tree memory arbitration netlists — the "M" nodes of the paper's
// Figure 6 floorplan, which route memory accesses from the execution
// stations toward the interleaved cache with "bandwidth increasing along
// each link on the way to the root" (Leiserson fat-trees). Each node
// admits at most its link capacity of the oldest outstanding requests;
// requests surviving every level reach the cache. The timing model in
// internal/memory implements the same policy functionally; these
// circuits make it gates.

// PopCount emits a population-count adder tree over the given nets,
// returning a ceil(log2(n+1))-bit bus. Depth Θ(log n · log log n).
func PopCount(c *Circuit, xs []int) Bus {
	if len(xs) == 0 {
		return c.ConstBus(0, 1)
	}
	if len(xs) == 1 {
		return Bus{xs[0]}
	}
	mid := len(xs) / 2
	left := PopCount(c, xs[:mid])
	right := PopCount(c, xs[mid:])
	w := max(len(left), len(right)) + 1
	sum, cout := RippleAdder(c, padBus(c, left, w-1), padBus(c, right, w-1), c.Const(false))
	return append(sum, cout)
}

func padBus(c *Circuit, b Bus, w int) Bus {
	for len(b) < w {
		b = append(b, c.Const(false))
	}
	return b[:w]
}

// KOldestByTag emits the age-tag arbitration for one fat-tree node: among
// the requesting inputs, grant the k with the smallest age tags. Tags are
// tagW-bit and must be distinct for requesters (the engine's sequence
// numbers modulo 2^tagW with a window smaller than 2^tagW guarantee it).
// grant[i] = req[i] AND |{j : req[j] AND tag[j] < tag[i]}| < k.
func KOldestByTag(c *Circuit, reqs []int, tags []Bus, k int) []int {
	n := len(reqs)
	if len(tags) != n {
		panic("circuit: KOldestByTag length mismatch")
	}
	grants := make([]int, n)
	for i := 0; i < n; i++ {
		if k >= n {
			grants[i] = c.Buf(reqs[i])
			continue
		}
		older := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			older = append(older, c.And(reqs[j], lessThan(c, tags[j], tags[i])))
		}
		count := PopCount(c, older)
		kBus := c.ConstBus(uint64(k), len(count))
		grants[i] = c.And(reqs[i], lessThan(c, count, kBus))
	}
	return grants
}

// FatTreeArbiterLayout documents the I/O ordering of the arbiter netlist.
//
// Inputs, per station (leaf) in index order: the request bit, then tagW
// age-tag bits (smaller = older). Outputs: one grant bit per station:
// whether the request is admitted through every tree level up to and
// including the root.
type FatTreeArbiterLayout struct {
	N, TagW int
	Caps    []int // Caps[h-1] is the capacity of links at height h
}

// FatTreeArbiter builds the full arbitration netlist for n = 2^levels
// stations with per-height link capacities caps (caps[0] = links one
// level above the leaves). A request must be within the capacity of the
// oldest survivors at every node on its root path.
func FatTreeArbiter(n, tagW int, caps []int) (*Circuit, FatTreeArbiterLayout) {
	if n&(n-1) != 0 || n < 1 {
		panic("circuit: FatTreeArbiter needs a power-of-two station count")
	}
	levels := 0
	for 1<<levels < n {
		levels++
	}
	if len(caps) != levels {
		panic("circuit: FatTreeArbiter needs one capacity per level")
	}
	c := New()
	alive := make([]int, n)
	tags := make([]Bus, n)
	for i := 0; i < n; i++ {
		alive[i] = c.NewInput()
		tags[i] = c.NewInputBus(tagW)
	}
	for h := 1; h <= levels; h++ {
		size := 1 << h
		next := make([]int, n)
		for node := 0; node < n/size; node++ {
			lo := node * size
			sub := KOldestByTag(c, alive[lo:lo+size], tags[lo:lo+size], caps[h-1])
			copy(next[lo:lo+size], sub)
		}
		alive = next
	}
	for i := 0; i < n; i++ {
		c.Output(alive[i])
	}
	return c, FatTreeArbiterLayout{N: n, TagW: tagW, Caps: caps}
}

// FatTreeArbiterRef is the functional reference: admit requests oldest
// first subject to every level's link capacities (the policy
// memory.System applies, without its bank conflicts).
func FatTreeArbiterRef(reqs []bool, ages []int, caps []int) []bool {
	n := len(reqs)
	type item struct{ idx, age int }
	var order []item
	for i := 0; i < n; i++ {
		if reqs[i] {
			order = append(order, item{i, ages[i]})
		}
	}
	// Insertion sort by age (n is small).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].age < order[j-1].age; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	grants := make([]bool, n)
	use := make([]map[int]int, len(caps)+1)
	for h := range use {
		use[h] = map[int]int{}
	}
	for _, it := range order {
		ok := true
		for h := 1; h <= len(caps); h++ {
			if use[h][it.idx>>h] >= caps[h-1] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for h := 1; h <= len(caps); h++ {
			use[h][it.idx>>h]++
		}
		grants[it.idx] = true
	}
	return grants
}
