package circuit

// Prioritized ALU scheduler (Henry & Kuszmaul, "An efficient, prioritized
// scheduler using cyclic prefix", Ultrascalar Memo 2 — reference [6] of
// the paper). Given one request bit per station and a pool of K shared
// ALUs, the scheduler grants the K oldest requesters: grant[i] is high
// iff station i requests and fewer than K stations between the oldest and
// i (exclusive) request. The counting is a cyclic segmented parallel
// prefix over saturating adders, so the circuit has Θ(log n · log K)
// gate delay — within the CSPP bounds the paper assumes for its shared-
// ALU remark in Section 7.

// satAddOp is a saturating-add scan operator over countW-bit counters:
// values accumulate and clamp at 2^countW - 1.
type satAddOp struct{ countW int }

func (o satAddOp) Width() int { return o.countW }

func (o satAddOp) Combine(c *Circuit, a, b Bus) Bus {
	sum, cout := RippleAdder(c, a, b, c.Const(false))
	// Saturate: if the add overflowed, clamp to all ones.
	out := make(Bus, o.countW)
	for i := range out {
		out[i] = c.Or(sum[i], cout)
	}
	return out
}

func (o satAddOp) Identity(c *Circuit) Bus { return c.ConstBus(0, o.countW) }

// Scheduler builds the K-of-n prioritized scheduler netlist. Inputs, per
// station: the oldest marker (segment bit), then the request bit.
// Outputs: one grant bit per station. Exactly min(K, requests) grants are
// issued, to the oldest requesters.
func Scheduler(n, k int) *Circuit {
	c := New()
	if k < 1 {
		panic("circuit: scheduler needs k >= 1")
	}
	countW := log2ceil(k + 1)
	items := make([]ScanItem, n)
	reqs := make([]int, n)
	segs := make([]int, n)
	zero := c.ConstBus(0, countW)
	for i := 0; i < n; i++ {
		segs[i] = c.NewInput()
		reqs[i] = c.NewInput()
		// The station contributes 1 to the count when it requests.
		val := append(Bus{reqs[i]}, zero[1:]...)
		items[i] = ScanItem{Seg: segs[i], Val: val}
	}
	counts := BuildCSPPTree(c, items, satAddOp{countW: countW})
	kBus := c.ConstBus(uint64(k), countW)
	for i := 0; i < n; i++ {
		// grant = request AND (earlier-requests < K). The counter width
		// countW admits counts up to 2^countW-1 >= k, and saturation
		// preserves "count >= K" exactly. The oldest station has no
		// earlier requesters (its wrap output is the full-ring count), so
		// its segment bit overrides the comparison.
		lt := c.Or(segs[i], lessThan(c, counts[i], kBus))
		c.Output(c.And(reqs[i], lt))
	}
	return c
}

// lessThan emits an unsigned comparator a < b via a borrow chain.
func lessThan(c *Circuit, a, b Bus) int {
	if len(a) != len(b) {
		panic("circuit: lessThan width mismatch")
	}
	// a < b  ⇔  no carry out of a + ~b + 1.
	nb := make(Bus, len(b))
	for i := range b {
		nb[i] = c.Not(b[i])
	}
	_, cout := RippleAdder(c, a, nb, c.Const(true))
	return c.Not(cout)
}

// ScheduleRef is the functional reference of the scheduler: grants the k
// oldest requesters starting from station `oldest`, cyclically.
func ScheduleRef(requests []bool, oldest, k int) []bool {
	n := len(requests)
	grants := make([]bool, n)
	for i := 0; i < n && k > 0; i++ {
		p := (oldest + i) % n
		if requests[p] {
			grants[p] = true
			k--
		}
	}
	return grants
}
