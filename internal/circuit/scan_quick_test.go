package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ultrascalar/internal/cspp"
)

// satAddFunc mirrors satAddOp functionally for cross-validation of the
// generic circuit scan against the generic functional scan.
type satAddFunc struct{ w int }

func (o satAddFunc) Combine(a, b uint64) uint64 {
	max := uint64(1)<<uint(o.w) - 1
	s := a + b
	if s > max {
		return max
	}
	return s
}
func (o satAddFunc) Identity() uint64 { return 0 }

// TestGenericScanCircuitVsFunctional drives BuildCSPPTree with the
// saturating-add operator against cspp.RingExclusive with the matching
// functional operator — the two generic scan frameworks must agree for
// any associative operator, not just the two the datapaths use.
func TestGenericScanCircuitVsFunctional(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	const w = 3
	for _, n := range []int{1, 2, 3, 5, 8, 16} {
		c := New()
		items := make([]ScanItem, n)
		for i := range items {
			items[i] = ScanItem{Seg: c.NewInput(), Val: c.NewInputBus(w)}
		}
		outs := BuildCSPPTree(c, items, satAddOp{countW: w})
		for _, o := range outs {
			c.OutputBus(o)
		}
		for trial := 0; trial < 40; trial++ {
			segs := make([]bool, n)
			vals := make([]uint64, n)
			segs[rng.Intn(n)] = true // the datapath guarantees one segment
			for i := range vals {
				if rng.Intn(4) == 0 {
					segs[i] = true
				}
				vals[i] = uint64(rng.Intn(1 << w))
			}
			in := make([]bool, 0, n*(1+w))
			felems := make([]cspp.Elem[uint64], n)
			for i := 0; i < n; i++ {
				in = append(in, segs[i])
				for b := 0; b < w; b++ {
					in = append(in, vals[i]>>uint(b)&1 == 1)
				}
				felems[i] = cspp.Elem[uint64]{Seg: segs[i], Val: vals[i]}
			}
			raw := c.Eval(in)
			want := cspp.RingExclusive[uint64](felems, satAddFunc{w: w})
			for i := 0; i < n; i++ {
				var got uint64
				for b := 0; b < w; b++ {
					if raw[i*w+b] {
						got |= 1 << uint(b)
					}
				}
				if got != want[i] {
					t.Fatalf("n=%d trial=%d pos=%d: circuit %d, functional %d (segs=%v vals=%v)",
						n, trial, i, got, want[i], segs, vals)
				}
			}
		}
	}
}

// TestRingVsTreeCircuitQuick: the two circuit implementations (Figure 1
// ring, Figure 4 tree) compute the same function, property-checked.
func TestRingVsTreeCircuitQuick(t *testing.T) {
	const n, w = 6, 4
	ring := RegisterCSPP(n, w, false)
	tree := RegisterCSPP(n, w, true)
	f := func(segBits uint8, rawVals [n]uint8) bool {
		in := make([]bool, 0, n*(1+w))
		anySeg := false
		for i := 0; i < n; i++ {
			seg := segBits>>uint(i)&1 == 1
			anySeg = anySeg || seg
			in = append(in, seg)
			for b := 0; b < w; b++ {
				in = append(in, rawVals[i]>>uint(b)&1 == 1)
			}
		}
		if !anySeg {
			return true // datapath precludes the no-segment case
		}
		a := ring.Eval(in)
		b := tree.Eval(in)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
