package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func driveScheduler(c *Circuit, n int, requests []bool, oldest int) []bool {
	in := make([]bool, 0, 2*n)
	for i := 0; i < n; i++ {
		in = append(in, i == oldest, requests[i])
	}
	return c.Eval(in)
}

func TestSchedulerMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{1, 2, 4, 8, 16} {
		for _, k := range []int{1, 2, 3, 8} {
			c := Scheduler(n, k)
			for trial := 0; trial < 40; trial++ {
				reqs := make([]bool, n)
				for i := range reqs {
					reqs[i] = rng.Intn(2) == 0
				}
				oldest := rng.Intn(n)
				want := ScheduleRef(reqs, oldest, k)
				got := driveScheduler(c, n, reqs, oldest)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("n=%d k=%d oldest=%d reqs=%v: station %d got %v want %v (full: %v vs %v)",
							n, k, oldest, reqs, i, got[i], want[i], got, want)
					}
				}
			}
		}
	}
}

// TestSchedulerQuick property-tests grant counts and priority: never more
// than k grants, all grants are requests, and granted stations precede
// denied requesters in age order.
func TestSchedulerQuick(t *testing.T) {
	n, k := 12, 3
	c := Scheduler(n, k)
	f := func(reqBits uint16, oldestRaw uint8) bool {
		oldest := int(oldestRaw) % n
		reqs := make([]bool, n)
		for i := range reqs {
			reqs[i] = reqBits>>uint(i)&1 == 1
		}
		grants := driveScheduler(c, n, reqs, oldest)
		count := 0
		deniedSeen := false
		for i := 0; i < n; i++ {
			p := (oldest + i) % n
			if grants[p] {
				count++
				if !reqs[p] || deniedSeen {
					return false // granted a non-requester, or after a denial
				}
			} else if reqs[p] {
				deniedSeen = true
			}
		}
		want := 0
		for _, r := range reqs {
			if r {
				want++
			}
		}
		if want > k {
			want = k
		}
		return count == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSchedulerDepthLogarithmic(t *testing.T) {
	// Depth is Θ(log n · log K): each of the log n scan levels costs a
	// saturating log K-bit add plus a mux (about 9 gate delays with K=4).
	d16 := Scheduler(16, 4).Depth()
	d256 := Scheduler(256, 4).Depth()
	perDoubling := (d256 - d16 + 3) / 4
	if perDoubling > 12 {
		t.Errorf("scheduler depth grew %d -> %d (%d per doubling); want Θ(log n · log K)",
			d16, d256, perDoubling)
	}
	// And nothing like linear: 16x the stations must not cost 4x depth.
	if d256 > 2*d16 {
		t.Errorf("scheduler depth %d -> %d looks super-logarithmic", d16, d256)
	}
}

func TestSchedulerPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 should panic")
		}
	}()
	Scheduler(4, 0)
}

func TestScheduleRefBasics(t *testing.T) {
	got := ScheduleRef([]bool{true, true, true, true}, 2, 2)
	want := []bool{false, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	// Wraps around.
	got = ScheduleRef([]bool{true, false, false, true}, 3, 2)
	if !got[3] || !got[0] || got[1] || got[2] {
		t.Errorf("wrap grants wrong: %v", got)
	}
}
