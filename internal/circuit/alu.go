package circuit

// Gate-level ALU datapath. The paper's execution stations each contain "a
// simple integer ALU" (Section 7); these generators produce the actual
// netlists so the station's contribution to the clock path is measured,
// not assumed. The adder comes in two variants mirroring the paper's
// linear-versus-logarithmic theme: a ripple-carry chain (Θ(W) depth) and
// a parallel-prefix carry tree (Θ(log W) depth) built on the same scan
// network as the register CSPPs — carry propagation is itself a parallel
// prefix over (generate, propagate) pairs.

// gpScanOp combines carry (generate, propagate) pairs:
// (g, p) = (g2 ∨ (p2 ∧ g1), p1 ∧ p2).
type gpScanOp struct{}

func (gpScanOp) Width() int { return 2 }

func (gpScanOp) Combine(c *Circuit, a, b Bus) Bus {
	g := c.Or(b[0], c.And(b[1], a[0]))
	p := c.And(a[1], b[1])
	return Bus{g, p}
}

func (gpScanOp) Identity(c *Circuit) Bus {
	return Bus{c.Const(false), c.Const(true)} // no generate, propagate
}

// RippleAdder emits a ripple-carry adder: sum = a + b + cin, with the
// carry out. Depth Θ(w).
func RippleAdder(c *Circuit, a, b Bus, cin int) (sum Bus, cout int) {
	if len(a) != len(b) {
		panic("circuit: adder width mismatch")
	}
	sum = make(Bus, len(a))
	carry := cin
	for i := range a {
		axb := c.Xor(a[i], b[i])
		sum[i] = c.Xor(axb, carry)
		carry = c.Or(c.And(a[i], b[i]), c.And(axb, carry))
	}
	return sum, carry
}

// PrefixAdder emits a parallel-prefix (carry-lookahead) adder with Θ(log
// w) depth, using the segmented-scan network with all segment bits low
// (an ordinary inclusive scan).
func PrefixAdder(c *Circuit, a, b Bus, cin int) (sum Bus, cout int) {
	if len(a) != len(b) {
		panic("circuit: adder width mismatch")
	}
	w := len(a)
	zero := c.Const(false)
	items := make([]ScanItem, w)
	for i := 0; i < w; i++ {
		g := c.And(a[i], b[i])
		p := c.Xor(a[i], b[i])
		if i == 0 {
			// Fold the carry-in into bit 0's generate.
			g = c.Or(g, c.And(p, cin))
		}
		items[i] = ScanItem{Seg: zero, Val: Bus{g, p}}
	}
	res := scanTree(c, items, gpScanOp{})
	sum = make(Bus, w)
	for i := 0; i < w; i++ {
		p := c.Xor(a[i], b[i])
		carryIn := cin
		if i > 0 {
			carryIn = res.incl[i-1][0]
		}
		sum[i] = c.Xor(p, carryIn)
	}
	return sum, res.incl[w-1][0]
}

// BarrelShifter emits a logarithmic shifter. dir low shifts left; arith
// selects sign extension for right shifts. The shift amount bus is
// log2(w) bits (the ISA masks amounts to the word width).
func BarrelShifter(c *Circuit, a Bus, amount Bus, dir, arith int) Bus {
	w := len(a)
	cur := append(Bus{}, a...)
	fill := c.And(arith, a[w-1]) // sign bit for arithmetic right shifts
	zero := c.Const(false)
	for stage := 0; stage < len(amount); stage++ {
		k := 1 << stage
		if k >= w {
			break
		}
		next := make(Bus, w)
		for i := 0; i < w; i++ {
			// Left-shift source: bit i-k (or 0); right-shift source:
			// bit i+k (or fill).
			var left, right int
			if i-k >= 0 {
				left = cur[i-k]
			} else {
				left = zero
			}
			if i+k < w {
				right = cur[i+k]
			} else {
				right = fill
			}
			shifted := c.Mux(dir, left, right)
			next[i] = c.Mux(amount[stage], cur[i], shifted)
		}
		cur = next
	}
	return cur
}

// ALUFn encodes the combinational ALU functions. Multi-cycle operations
// (MUL, DIV, REM) use dedicated sequential units in the paper's stations
// and are not part of the single-cycle ALU netlist.
type ALUFn uint8

// The ALU functions.
const (
	FnAdd ALUFn = iota
	FnSub
	FnAnd
	FnOr
	FnXor
	FnSll
	FnSrl
	FnSra
	FnSlt
	FnSltu
	NumALUFns
)

// ALU emits a complete w-bit single-cycle ALU. Inputs, in order: a (w
// bits), b (w bits), fn (4 bits, an ALUFn). Output: the w-bit result.
// prefix selects the parallel-prefix adder over the ripple-carry one.
func ALU(w int, prefix bool) *Circuit {
	c := New()
	a := c.NewInputBus(w)
	b := c.NewInputBus(w)
	fn := c.NewInputBus(4)

	// Adder/subtractor: subtract = a + ~b + 1. isSub covers SUB, SLT,
	// SLTU (and comparisons read the subtraction).
	isSub := decodeAny(c, fn, FnSub, FnSlt, FnSltu)
	bEff := make(Bus, w)
	for i := range b {
		bEff[i] = c.Mux(isSub, b[i], c.Not(b[i]))
	}
	var sum Bus
	var cout int
	if prefix {
		sum, cout = PrefixAdder(c, a, bEff, isSub)
	} else {
		sum, cout = RippleAdder(c, a, bEff, isSub)
	}

	// Logic unit.
	andB, orB, xorB := make(Bus, w), make(Bus, w), make(Bus, w)
	for i := 0; i < w; i++ {
		andB[i] = c.And(a[i], b[i])
		orB[i] = c.Or(a[i], b[i])
		xorB[i] = c.Xor(a[i], b[i])
	}

	// Shifter: amount = low log2(w) bits of b.
	amtBits := 0
	for 1<<amtBits < w {
		amtBits++
	}
	isRight := decodeAny(c, fn, FnSrl, FnSra)
	isArith := decodeAny(c, fn, FnSra)
	shifted := BarrelShifter(c, a, b[:amtBits], isRight, isArith)

	// Comparisons. Signed, in the standard overflow-safe form:
	// slt = (sign(a) ≠ sign(b)) ? sign(a) : sign(a-b).
	sa, sb := a[w-1], b[w-1]
	saNE := c.Xor(sa, sb)
	slt := c.Or(c.And(saNE, sa), c.And(c.Not(saNE), sum[w-1]))
	// Unsigned: a < b  ⇔  no carry out of a + ~b + 1.
	sltu := c.Not(cout)
	zeroBus := c.ConstBus(0, w)
	sltBus := append(Bus{slt}, zeroBus[1:]...)
	sltuBus := append(Bus{sltu}, zeroBus[1:]...)

	// Result select tree.
	out := sum // FnAdd and FnSub both read the adder
	out = c.MuxBus(decodeAny(c, fn, FnAnd), out, andB)
	out = c.MuxBus(decodeAny(c, fn, FnOr), out, orB)
	out = c.MuxBus(decodeAny(c, fn, FnXor), out, xorB)
	out = c.MuxBus(decodeAny(c, fn, FnSll, FnSrl, FnSra), out, shifted)
	out = c.MuxBus(decodeAny(c, fn, FnSlt), out, sltBus)
	out = c.MuxBus(decodeAny(c, fn, FnSltu), out, sltuBus)
	c.OutputBus(out)
	return c
}

// decodeAny returns a net that is high when fn equals any of the given
// function codes.
func decodeAny(c *Circuit, fn Bus, fns ...ALUFn) int {
	matches := make([]int, len(fns))
	for i, f := range fns {
		matches[i] = c.Eq(fn, c.ConstBus(uint64(f), len(fn)))
	}
	return c.OrN(matches)
}
