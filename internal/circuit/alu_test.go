package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ultrascalar/internal/isa"
)

func driveAdder(c *Circuit, w int, a, b uint64, cin bool) (uint64, bool) {
	in := make([]bool, 0, 2*w+1)
	for i := 0; i < w; i++ {
		in = append(in, a>>uint(i)&1 == 1)
	}
	for i := 0; i < w; i++ {
		in = append(in, b>>uint(i)&1 == 1)
	}
	if c.NumInputs() == 2*w+1 {
		in = append(in, cin)
	}
	out := c.Eval(in)
	var sum uint64
	for i := 0; i < w; i++ {
		if out[i] {
			sum |= 1 << uint(i)
		}
	}
	return sum, out[w]
}

func buildAdder(w int, prefix bool) *Circuit {
	c := New()
	a := c.NewInputBus(w)
	b := c.NewInputBus(w)
	cin := c.NewInput()
	var sum Bus
	var cout int
	if prefix {
		sum, cout = PrefixAdder(c, a, b, cin)
	} else {
		sum, cout = RippleAdder(c, a, b, cin)
	}
	c.OutputBus(sum)
	c.Output(cout)
	return c
}

func TestAddersMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, w := range []int{1, 2, 3, 8, 16, 32} {
		ripple := buildAdder(w, false)
		prefix := buildAdder(w, true)
		mask := uint64(1)<<uint(w) - 1
		for trial := 0; trial < 60; trial++ {
			a, b := rng.Uint64()&mask, rng.Uint64()&mask
			cin := rng.Intn(2) == 1
			wantSum := a + b
			if cin {
				wantSum++
			}
			wantC := wantSum>>uint(w)&1 == 1
			wantSum &= mask
			for name, c := range map[string]*Circuit{"ripple": ripple, "prefix": prefix} {
				sum, cout := driveAdder(c, w, a, b, cin)
				if sum != wantSum || cout != wantC {
					t.Fatalf("%s w=%d: %d+%d+%v = %d,%v want %d,%v",
						name, w, a, b, cin, sum, cout, wantSum, wantC)
				}
			}
		}
	}
}

func TestAdderDepths(t *testing.T) {
	// Ripple depth is Θ(w); prefix depth Θ(log w).
	r32 := buildAdder(32, false).Depth()
	p32 := buildAdder(32, true).Depth()
	if r32 < 32 {
		t.Errorf("ripple-32 depth %d, want >= 32", r32)
	}
	if p32 > 24 {
		t.Errorf("prefix-32 depth %d, want O(log w)", p32)
	}
	if p32 >= r32 {
		t.Errorf("prefix depth %d should beat ripple %d", p32, r32)
	}
}

func driveALU(c *Circuit, w int, a, b uint64, fn ALUFn) uint64 {
	in := make([]bool, 0, 2*w+4)
	for i := 0; i < w; i++ {
		in = append(in, a>>uint(i)&1 == 1)
	}
	for i := 0; i < w; i++ {
		in = append(in, b>>uint(i)&1 == 1)
	}
	for i := 0; i < 4; i++ {
		in = append(in, uint8(fn)>>uint(i)&1 == 1)
	}
	out := c.Eval(in)
	var v uint64
	for i := 0; i < w; i++ {
		if out[i] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// fnToInst maps an ALU function to the ISA operation with the same
// semantics, so the netlist is tested against isa.ALUOp.
var fnToInst = map[ALUFn]isa.Op{
	FnAdd: isa.OpAdd, FnSub: isa.OpSub, FnAnd: isa.OpAnd, FnOr: isa.OpOr,
	FnXor: isa.OpXor, FnSll: isa.OpSll, FnSrl: isa.OpSrl, FnSra: isa.OpSra,
	FnSlt: isa.OpSlt, FnSltu: isa.OpSltu,
}

// TestALUMatchesISA32 drives the full 32-bit ALU netlists against the
// architectural ALU semantics for every function.
func TestALUMatchesISA32(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, prefix := range []bool{false, true} {
		c := ALU(32, prefix)
		for fn, op := range fnToInst {
			for trial := 0; trial < 25; trial++ {
				a := isa.Word(rng.Uint32())
				b := isa.Word(rng.Uint32())
				switch trial {
				case 0:
					a, b = 0, 0
				case 1:
					a, b = ^isa.Word(0), ^isa.Word(0)
				case 2:
					a, b = 1<<31, ^isa.Word(0) // signed edge
				}
				want := isa.ALUOp(isa.Inst{Op: op}, a, b)
				// Shift semantics in the ISA mask the amount to 5 bits,
				// as does the barrel shifter's amount bus.
				got := isa.Word(driveALU(c, 32, uint64(a), uint64(b), fn))
				if got != want {
					t.Fatalf("prefix=%v fn=%d (%s): ALU(%#x,%#x) = %#x, want %#x",
						prefix, fn, op, a, b, got, want)
				}
			}
		}
	}
}

// TestALUQuick property-tests the prefix ALU on random inputs and ops.
func TestALUQuick(t *testing.T) {
	c := ALU(16, true)
	fns := make([]ALUFn, 0, len(fnToInst))
	for fn := range fnToInst {
		fns = append(fns, fn)
	}
	f := func(a16, b16 uint16, pick uint8) bool {
		fn := fns[int(pick)%len(fns)]
		op := fnToInst[fn]
		// Model a 16-bit machine: mask and compare low 16 bits; shifts
		// mask to 4 bits in a 16-bit datapath, so constrain b for shifts.
		b := uint64(b16)
		if op == isa.OpSll || op == isa.OpSrl || op == isa.OpSra {
			b &= 15
		}
		got := driveALU(c, 16, uint64(a16), b, fn) & 0xFFFF
		want := alu16(op, uint16(a16), uint16(b))
		return got == uint64(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// alu16 is a 16-bit reference semantics for the property test.
func alu16(op isa.Op, a, b uint16) uint16 {
	switch op {
	case isa.OpAdd:
		return a + b
	case isa.OpSub:
		return a - b
	case isa.OpAnd:
		return a & b
	case isa.OpOr:
		return a | b
	case isa.OpXor:
		return a ^ b
	case isa.OpSll:
		return a << (b & 15)
	case isa.OpSrl:
		return a >> (b & 15)
	case isa.OpSra:
		return uint16(int16(a) >> (b & 15))
	case isa.OpSlt:
		if int16(a) < int16(b) {
			return 1
		}
		return 0
	case isa.OpSltu:
		if a < b {
			return 1
		}
		return 0
	}
	panic("unreachable")
}

func TestBarrelShifterEdges(t *testing.T) {
	w := 8
	c := New()
	a := c.NewInputBus(w)
	amt := c.NewInputBus(3)
	dir := c.NewInput()
	arith := c.NewInput()
	c.OutputBus(BarrelShifter(c, a, amt, dir, arith))
	drive := func(v uint64, k int, right, ar bool) uint64 {
		in := make([]bool, 0, w+5)
		for i := 0; i < w; i++ {
			in = append(in, v>>uint(i)&1 == 1)
		}
		for i := 0; i < 3; i++ {
			in = append(in, k>>uint(i)&1 == 1)
		}
		in = append(in, right, ar)
		out := c.Eval(in)
		var r uint64
		for i := 0; i < w; i++ {
			if out[i] {
				r |= 1 << uint(i)
			}
		}
		return r
	}
	if got := drive(0b10110001, 0, false, false); got != 0b10110001 {
		t.Errorf("shift by 0 = %b", got)
	}
	if got := drive(0b10110001, 3, false, false); got != 0b10001000 {
		t.Errorf("left 3 = %b", got)
	}
	if got := drive(0b10110001, 3, true, false); got != 0b00010110 {
		t.Errorf("logical right 3 = %b", got)
	}
	if got := drive(0b10110001, 3, true, true); got != 0b11110110 {
		t.Errorf("arith right 3 = %b", got)
	}
	if got := drive(0b10110001, 7, true, true); got != 0xFF {
		t.Errorf("arith right 7 of negative = %b", got)
	}
}

func TestAdderWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c := New()
	RippleAdder(c, c.ConstBus(0, 2), c.ConstBus(0, 3), c.Const(false))
}

func BenchmarkBuildALU32Prefix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ALU(32, true)
	}
}
