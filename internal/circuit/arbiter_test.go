package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPopCount(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{1, 2, 3, 7, 16} {
		c := New()
		xs := make([]int, n)
		for i := range xs {
			xs[i] = c.NewInput()
		}
		c.OutputBus(PopCount(c, xs))
		for trial := 0; trial < 30; trial++ {
			in := make([]bool, n)
			want := 0
			for i := range in {
				in[i] = rng.Intn(2) == 0
				if in[i] {
					want++
				}
			}
			out := c.Eval(in)
			got := 0
			for b, v := range out {
				if v {
					got |= 1 << uint(b)
				}
			}
			if got != want {
				t.Fatalf("n=%d in=%v popcount=%d want %d", n, in, got, want)
			}
		}
	}
	// Empty input is a zero bus.
	c := New()
	b := PopCount(c, nil)
	c.OutputBus(b)
	if out := c.Eval(nil); out[0] {
		t.Error("empty popcount should be 0")
	}
}

func driveArbiter(c *Circuit, lay FatTreeArbiterLayout, reqs []bool, ages []int) []bool {
	in := make([]bool, 0, lay.N*(1+lay.TagW))
	for i := 0; i < lay.N; i++ {
		in = append(in, reqs[i])
		for b := 0; b < lay.TagW; b++ {
			in = append(in, ages[i]>>uint(b)&1 == 1)
		}
	}
	return c.Eval(in)
}

// TestFatTreeArbiterMatchesReference drives the gate-level arbiter
// against the oldest-first greedy reference for random request patterns
// and capacities.
func TestFatTreeArbiterMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, cfg := range []struct {
		n    int
		caps []int
	}{
		{2, []int{1}},
		{4, []int{1, 2}},
		{4, []int{2, 1}},
		{8, []int{1, 2, 2}},
		{8, []int{2, 4, 4}},
		{16, []int{1, 2, 4, 4}},
	} {
		tagW := 5
		c, lay := FatTreeArbiter(cfg.n, tagW, cfg.caps)
		for trial := 0; trial < 40; trial++ {
			reqs := make([]bool, cfg.n)
			ages := rng.Perm(1 << tagW)[:cfg.n] // distinct tags
			for i := range reqs {
				reqs[i] = rng.Intn(2) == 0
			}
			want := FatTreeArbiterRef(reqs, ages, cfg.caps)
			got := driveArbiter(c, lay, reqs, ages)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d caps=%v reqs=%v ages=%v: station %d got %v want %v\nfull: %v vs %v",
						cfg.n, cfg.caps, reqs, ages, i, got[i], want[i], got, want)
				}
			}
		}
	}
}

// TestFatTreeArbiterQuick property-tests invariants: grants are requests,
// each node's grant count respects its capacity, and grants are
// age-consistent (no granted request is younger than a denied one that
// shares its whole root path... stronger: matches the reference).
func TestFatTreeArbiterQuick(t *testing.T) {
	caps := []int{1, 2, 2}
	c, lay := FatTreeArbiter(8, 4, caps)
	f := func(reqBits uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ages := rng.Perm(16)[:8]
		reqs := make([]bool, 8)
		for i := range reqs {
			reqs[i] = reqBits>>uint(i)&1 == 1
		}
		got := driveArbiter(c, lay, reqs, ages)
		want := FatTreeArbiterRef(reqs, ages, caps)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		// Capacity invariant per level.
		for h := 1; h <= len(caps); h++ {
			counts := map[int]int{}
			for i, g := range got {
				if g {
					counts[i>>h]++
				}
			}
			for _, cnt := range counts {
				if cnt > caps[h-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFatTreeArbiterFullBandwidth(t *testing.T) {
	// With caps = subtree sizes, everything is granted.
	c, lay := FatTreeArbiter(8, 4, []int{2, 4, 8})
	reqs := []bool{true, true, true, true, true, true, true, true}
	ages := []int{3, 1, 4, 1 + 4, 5, 9, 2, 6}
	got := driveArbiter(c, lay, reqs, ages)
	for i, g := range got {
		if !g {
			t.Errorf("station %d denied under full bandwidth", i)
		}
	}
}

func TestFatTreeArbiterPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"non-power-of-two": func() { FatTreeArbiter(6, 4, []int{1, 1}) },
		"wrong caps":       func() { FatTreeArbiter(8, 4, []int{1}) },
		"mismatch":         func() { c := New(); KOldestByTag(c, []int{c.NewInput()}, nil, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}
