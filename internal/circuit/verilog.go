package circuit

import (
	"fmt"
	"strings"
)

// Verilog renders the netlist as a structural Verilog module, so the
// generated datapaths (CSPP trees, grids, ALUs, schedulers, arbiters) can
// be inspected, simulated or synthesized with standard tools. Inputs are
// named in[0..], outputs out[0..], internal nets n<id>.
func (c *Circuit) Verilog(module string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s(\n  input wire [%d:0] in,\n  output wire [%d:0] out\n);\n",
		module, max(c.NumInputs()-1, 0), max(c.NumOutputs()-1, 0))

	name := make([]string, len(c.gates))
	inIdx := 0
	for id, g := range c.gates {
		switch g.kind {
		case Input:
			name[id] = fmt.Sprintf("in[%d]", inIdx)
			inIdx++
		case Const0:
			name[id] = "1'b0"
		case Const1:
			name[id] = "1'b1"
		default:
			name[id] = fmt.Sprintf("n%d", id)
		}
	}
	for id, g := range c.gates {
		switch g.kind {
		case Input, Const0, Const1:
			continue
		case Buf:
			fmt.Fprintf(&b, "  wire %s = %s;\n", name[id], name[g.in[0]])
		case Not:
			fmt.Fprintf(&b, "  wire %s = ~%s;\n", name[id], name[g.in[0]])
		case And2:
			fmt.Fprintf(&b, "  wire %s = %s & %s;\n", name[id], name[g.in[0]], name[g.in[1]])
		case Or2:
			fmt.Fprintf(&b, "  wire %s = %s | %s;\n", name[id], name[g.in[0]], name[g.in[1]])
		case Xor2:
			fmt.Fprintf(&b, "  wire %s = %s ^ %s;\n", name[id], name[g.in[0]], name[g.in[1]])
		case Mux2:
			fmt.Fprintf(&b, "  wire %s = %s ? %s : %s;\n",
				name[id], name[g.in[0]], name[g.in[2]], name[g.in[1]])
		}
	}
	for i, id := range c.outputs {
		fmt.Fprintf(&b, "  assign out[%d] = %s;\n", i, name[id])
	}
	b.WriteString("endmodule\n")
	return b.String()
}
