package circuit

// Ultrascalar II register-datapath netlists (paper Figures 7 and 8).
//
// The grid routes, for each station's argument, the value of the nearest
// earlier writer of the requested register — searching through the L
// initial register rows and the result rows of all earlier stations. The
// linear variant (Figure 7) chains comparators and multiplexers down each
// column, giving Θ(n+L) gate delay; the mesh-of-trees variant (Figure 8)
// fans register numbers out through buffer trees and reduces each column
// with a (noncyclic) segmented reduction tree, giving Θ(log(n+L)) delay.

// Ultra2Layout records the input ordering of an Ultrascalar II grid
// netlist, so tests and tools can drive it.
//
// Inputs, in order:
//   - For each of L initial registers: W+1 nets (value bits then ready).
//   - For each of n stations: destW nets (destination register number),
//     one net (writes flag), W+1 nets (result value bits then ready),
//     then for each of the 2 arguments: destW nets (argument register
//     number).
//
// Outputs, in order:
//   - For each station, argument 0 then argument 1: W+1 nets.
//   - For each of L registers: W+1 nets (final outgoing value).
type Ultra2Layout struct {
	N, L, W int
	DestW   int // bits per register number: ceil(log2 L)
}

// NumInputs returns the total input count of the layout.
func (u Ultra2Layout) NumInputs() int {
	per := u.DestW + 1 + (u.W + 1) + 2*u.DestW
	return u.L*(u.W+1) + u.N*per
}

// NumOutputs returns the total output count of the layout.
func (u Ultra2Layout) NumOutputs() int {
	return u.N*2*(u.W+1) + u.L*(u.W+1)
}

func log2ceil(x int) int {
	b := 0
	for 1<<b < x {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// row is one register binding available to later columns: a register
// number, a validity flag (station rows only write when the instruction
// writes a register), and a value bus (value+ready).
type row struct {
	num    Bus
	writes int
	val    Bus
}

// Ultra2Grid builds the register datapath of an n-station, L-register,
// W-bit Ultrascalar II. tree selects the mesh-of-trees (Figure 8) versus
// the linear grid (Figure 7).
func Ultra2Grid(n, l, w int, tree bool) (*Circuit, Ultra2Layout) {
	c := New()
	layout := Ultra2Layout{N: n, L: l, W: w, DestW: log2ceil(l)}
	dw := layout.DestW

	// Initial register file rows.
	rows := make([]row, 0, l+n)
	for r := 0; r < l; r++ {
		rows = append(rows, row{
			num:    c.ConstBus(uint64(r), dw),
			writes: c.Const(true),
			val:    c.NewInputBus(w + 1),
		})
	}

	var argOuts []Bus
	for s := 0; s < n; s++ {
		dest := c.NewInputBus(dw)
		writes := c.NewInput()
		result := c.NewInputBus(w + 1)
		for a := 0; a < 2; a++ {
			argNum := c.NewInputBus(dw)
			argOuts = append(argOuts, column(c, rows, argNum, w, tree))
		}
		rows = append(rows, row{num: dest, writes: writes, val: result})
	}

	// Outgoing register values: one column per logical register, searching
	// all rows (upper-right corner of Figure 7).
	var regOuts []Bus
	for r := 0; r < l; r++ {
		regOuts = append(regOuts, column(c, rows, c.ConstBus(uint64(r), dw), w, tree))
	}

	for _, b := range argOuts {
		c.OutputBus(b)
	}
	for _, b := range regOuts {
		c.OutputBus(b)
	}
	return c, layout
}

// column emits the search for the nearest matching row: compare the wanted
// register number against every row's number, then select the newest
// matching row's value. The linear form chains muxes from oldest to newest
// (Figure 7); the tree form is a balanced segmented reduction over rows
// with buffer-tree fan-out of the wanted number (Figure 8; "the tree
// circuits used here are more properly referred to as reduction circuits").
func column(c *Circuit, rows []row, want Bus, w int, tree bool) Bus {
	k := len(rows)
	if !tree {
		// Linear: newest matching row wins by muxing in row order.
		out := c.ConstBus(0, w+1)
		for _, r := range rows {
			match := c.And(c.Eq(r.num, want), r.writes)
			out = c.MuxBus(match, out, r.val)
		}
		return out
	}
	// Mesh-of-trees: fan out the wanted number to every comparator, then
	// reduce (match, value) pairs taking the newest match.
	wants := c.FanoutBus(want, k)
	type mv struct {
		match int
		val   Bus
	}
	items := make([]mv, k)
	for i, r := range rows {
		items[i] = mv{match: c.And(c.Eq(r.num, wants[i]), r.writes), val: r.val}
	}
	var reduce func(lo, hi int) mv
	reduce = func(lo, hi int) mv {
		if hi-lo == 1 {
			return items[lo]
		}
		mid := (lo + hi) / 2
		left := reduce(lo, mid)
		right := reduce(mid, hi)
		return mv{
			match: c.Or(left.match, right.match),
			val:   c.MuxBus(right.match, left.val, right.val),
		}
	}
	return reduce(0, k).val
}

// HybridModifiedBits builds the OR-gate extension of the paper's Figure 9:
// given each station's destination register number and writes flag, it
// produces one modified bit per logical register, so an Ultrascalar II
// cluster presents the Ultrascalar I interface. Inputs: per station, destW
// number bits then the writes flag. Outputs: L modified bits.
func HybridModifiedBits(n, l int, tree bool) *Circuit {
	c := New()
	dw := log2ceil(l)
	dests := make([]Bus, n)
	writes := make([]int, n)
	for s := 0; s < n; s++ {
		dests[s] = c.NewInputBus(dw)
		writes[s] = c.NewInput()
	}
	for r := 0; r < l; r++ {
		matches := make([]int, n)
		for s := 0; s < n; s++ {
			matches[s] = c.And(c.Eq(dests[s], c.ConstBus(uint64(r), dw)), writes[s])
		}
		var out int
		if tree {
			out = c.OrN(matches)
		} else {
			// "either a series of OR gates or a tree of OR gates"
			out = matches[0]
			for s := 1; s < n; s++ {
				out = c.Or(out, matches[s])
			}
		}
		c.Output(out)
	}
	return c
}
