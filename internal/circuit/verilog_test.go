package circuit

import (
	"strings"
	"testing"
)

func TestVerilogStructure(t *testing.T) {
	c := New()
	a, b := c.NewInput(), c.NewInput()
	sel := c.NewInput()
	c.Output(c.Mux(sel, c.And(a, b), c.Xor(a, c.Not(b))))
	c.Output(c.Const(true))
	v := c.Verilog("test_mod")
	for _, want := range []string{
		"module test_mod(",
		"input wire [2:0] in",
		"output wire [1:0] out",
		"in[0] & in[1]",
		"~in[1]",
		"?",
		"assign out[1] = 1'b1;",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q:\n%s", want, v)
		}
	}
}

func TestVerilogCSPP(t *testing.T) {
	c := Figure5CSPP(4, true)
	v := c.Verilog("cspp4")
	// Every designated output is assigned exactly once.
	if got := strings.Count(v, "assign out["); got != 4 {
		t.Errorf("%d output assigns, want 4", got)
	}
	if !strings.Contains(v, "module cspp4(") {
		t.Error("module header missing")
	}
	// No dangling net references: every used net name is defined. Cheap
	// check: each "wire nX =" line count equals logic gate count.
	counts := c.Counts()
	logic := counts[Buf] + counts[Not] + counts[And2] + counts[Or2] +
		counts[Xor2] + counts[Mux2]
	if got := strings.Count(v, "  wire n"); got != logic {
		t.Errorf("%d wire declarations, want %d", got, logic)
	}
}
