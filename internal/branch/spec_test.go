package branch

import "testing"

func TestGShareImplementsSpec(t *testing.T) {
	var p Predictor = GShare(8, 4)
	if _, ok := p.(SpecPredictor); !ok {
		t.Fatal("gshare should implement SpecPredictor")
	}
	// Static and bimodal intentionally do not (no global history).
	if _, ok := Static(true).(SpecPredictor); ok {
		t.Error("static must not implement SpecPredictor")
	}
	if _, ok := Bimodal(4).(SpecPredictor); ok {
		t.Error("bimodal must not implement SpecPredictor")
	}
}

// TestSpecAlternatingDeep simulates deep speculation: predict 8 branches
// ahead before resolving any, on an alternating pattern. With speculative
// history the predictor learns it; resolve-time-only history cannot.
func TestSpecAlternatingDeep(t *testing.T) {
	g := GShare(10, 8).(SpecPredictor)
	pc := 7
	misses := 0
	type pending struct {
		snap      bool
		snapshot  int
		predicted bool
	}
	iter := 0
	for round := 0; round < 50; round++ {
		var window []pending
		for k := 0; k < 8; k++ {
			taken, snap := g.PredictSpec(pc)
			window = append(window, pending{snapshot: snap, predicted: taken})
		}
		for _, p := range window {
			actual := iter%2 == 0
			iter++
			mis := p.predicted != actual
			if round >= 20 && mis {
				misses++
			}
			g.Resolve(pc, p.snapshot, actual, mis)
			if mis {
				// A real engine squashes the younger speculative branches;
				// emulate by re-predicting the rest of the window.
				break
			}
		}
	}
	if misses > 12 {
		t.Errorf("speculative gshare missed %d times after warmup on alternating pattern", misses)
	}
}

// TestSpecRewind: a misprediction rewinds the history to the snapshot plus
// the actual outcome, discarding younger speculative bits.
func TestSpecRewind(t *testing.T) {
	g := GShare(6, 6).(*gshare)
	g.history = 0b1010
	_, snap := g.PredictSpec(3)
	if snap != 0b1010 {
		t.Fatalf("snapshot %b, want 1010", snap)
	}
	g.PredictSpec(4) // younger speculative bit
	g.Resolve(3, snap, true, true)
	want := (0b1010<<1 | 1) & g.hmask
	if g.history != want {
		t.Errorf("history after rewind %b, want %b", g.history, want)
	}
	// Correct prediction leaves speculative history untouched.
	before := g.history
	_, snap2 := g.PredictSpec(5)
	after := g.history
	g.Resolve(5, snap2, g.table[(5^snap2)&g.mask].taken(), false)
	if g.history != after || after == before && g.hmask > 1 {
		// history advanced by exactly the speculative push
		if g.history != after {
			t.Errorf("correct resolve must not rewind: %b vs %b", g.history, after)
		}
	}
}
