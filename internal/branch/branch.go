// Package branch provides the branch predictors the fetch units of the
// Ultrascalar processors use to speculate ("All three processors ...
// speculate on branches, and effortlessly recover from branch
// mispredictions"). The paper does not prescribe a predictor, so the
// standard family is provided: static, bimodal (2-bit counters), and
// gshare, plus a small branch-target buffer for indirect jumps.
package branch

import "fmt"

// Predictor predicts conditional branch directions.
type Predictor interface {
	// Predict returns the predicted direction of the branch at pc.
	Predict(pc int) bool
	// Update trains the predictor with the resolved direction.
	Update(pc int, taken bool)
	// Name identifies the predictor in reports.
	Name() string
}

// staticPred predicts a fixed direction.
type staticPred struct{ taken bool }

// Static returns an always-taken or always-not-taken predictor.
func Static(taken bool) Predictor { return &staticPred{taken} }

func (s *staticPred) Predict(int) bool { return s.taken }
func (s *staticPred) Update(int, bool) {}
func (s *staticPred) Name() string {
	if s.taken {
		return "static-taken"
	}
	return "static-not-taken"
}

// counter is a saturating 2-bit counter: 0,1 predict not taken; 2,3 taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// bimodal is a table of 2-bit counters indexed by PC.
type bimodal struct {
	table []counter
	mask  int
}

// Bimodal returns a 2-bit-counter predictor with 2^bits entries,
// initialized weakly taken.
func Bimodal(bits int) Predictor {
	n := 1 << bits
	t := make([]counter, n)
	for i := range t {
		t[i] = 2
	}
	return &bimodal{table: t, mask: n - 1}
}

func (b *bimodal) Predict(pc int) bool { return b.table[pc&b.mask].taken() }
func (b *bimodal) Update(pc int, taken bool) {
	b.table[pc&b.mask] = b.table[pc&b.mask].update(taken)
}
func (b *bimodal) Name() string { return fmt.Sprintf("bimodal-%d", len(b.table)) }

// gshare XORs a global history register into the table index.
type gshare struct {
	table   []counter
	mask    int
	history int
	hmask   int
}

// GShare returns a gshare predictor with 2^bits counters and hbits of
// global history.
func GShare(bits, hbits int) Predictor {
	n := 1 << bits
	t := make([]counter, n)
	for i := range t {
		t[i] = 2
	}
	return &gshare{table: t, mask: n - 1, hmask: 1<<hbits - 1}
}

func (g *gshare) idx(pc int) int { return (pc ^ g.history) & g.mask }

func (g *gshare) Predict(pc int) bool { return g.table[g.idx(pc)].taken() }

func (g *gshare) Update(pc int, taken bool) {
	i := g.idx(pc)
	g.table[i] = g.table[i].update(taken)
	g.history = (g.history << 1) & g.hmask
	if taken {
		g.history |= 1
	}
}

func (g *gshare) Name() string {
	return fmt.Sprintf("gshare-%d", len(g.table))
}

// RAS is a return-address stack: calls push their return address, and
// return-type indirect jumps predict by popping. Speculative pushes and
// pops on wrong paths corrupt the stack (real designs checkpoint it);
// predictions remain just predictions, so correctness is unaffected.
type RAS struct {
	stack []int
	max   int
}

// NewRAS returns a stack holding up to depth return addresses.
func NewRAS(depth int) *RAS { return &RAS{max: depth} }

// Push records a return address; the oldest entry falls off a full stack.
func (r *RAS) Push(addr int) {
	if len(r.stack) == r.max {
		copy(r.stack, r.stack[1:])
		r.stack[len(r.stack)-1] = addr
		return
	}
	r.stack = append(r.stack, addr) //uslint:allow hotpathalloc -- grows only until the fixed RAS depth, then stops
}

// Pop predicts (and consumes) the most recent return address; ok is false
// on an empty stack.
func (r *RAS) Pop() (addr int, ok bool) {
	if len(r.stack) == 0 {
		return 0, false
	}
	addr = r.stack[len(r.stack)-1]
	r.stack = r.stack[:len(r.stack)-1]
	return addr, true
}

// Depth returns the current stack depth.
func (r *RAS) Depth() int { return len(r.stack) }

// BTB is a direct-mapped branch-target buffer used for indirect jumps
// (JALR): it predicts the last observed target of each jump PC.
type BTB struct {
	pcs     []int
	targets []int
	mask    int
}

// NewBTB returns a BTB with 2^bits entries.
func NewBTB(bits int) *BTB {
	n := 1 << bits
	b := &BTB{pcs: make([]int, n), targets: make([]int, n), mask: n - 1}
	for i := range b.pcs {
		b.pcs[i] = -1
	}
	return b
}

// Predict returns the predicted target of the jump at pc, or -1 when the
// BTB has no entry (the fetch unit then stalls until the jump resolves).
func (b *BTB) Predict(pc int) int {
	i := pc & b.mask
	if b.pcs[i] != pc {
		return -1
	}
	return b.targets[i]
}

// Update records the resolved target.
func (b *BTB) Update(pc, target int) {
	i := pc & b.mask
	b.pcs[i], b.targets[i] = pc, target
}
