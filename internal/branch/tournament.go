package branch

// tournament combines two component predictors with a table of 2-bit
// chooser counters (McFarling-style): the chooser learns, per branch,
// which component to trust.
type tournament struct {
	a, b    Predictor
	chooser []counter // low: use a, high: use b
	mask    int
}

// Tournament returns a chooser-based combination of two predictors with
// 2^bits chooser entries. If both components implement SpecPredictor the
// combination does too (see spec.go); with the plain constructor the
// combination trains through Update only.
func Tournament(a, b Predictor, bits int) Predictor {
	n := 1 << bits
	t := &tournament{a: a, b: b, chooser: make([]counter, n), mask: n - 1}
	for i := range t.chooser {
		t.chooser[i] = 1 // weakly prefer a
	}
	return t
}

func (t *tournament) useB(pc int) bool { return t.chooser[pc&t.mask].taken() }

// Predict consults the chosen component.
func (t *tournament) Predict(pc int) bool {
	if t.useB(pc) {
		return t.b.Predict(pc)
	}
	return t.a.Predict(pc)
}

// Update trains both components and moves the chooser toward whichever
// component was right.
func (t *tournament) Update(pc int, taken bool) {
	pa := t.a.Predict(pc)
	pb := t.b.Predict(pc)
	t.train(pc, pa == taken, pb == taken)
	t.a.Update(pc, taken)
	t.b.Update(pc, taken)
}

// train moves the chooser when exactly one component was correct.
func (t *tournament) train(pc int, aRight, bRight bool) {
	if aRight == bRight {
		return
	}
	i := pc & t.mask
	t.chooser[i] = t.chooser[i].update(bRight)
}

// Name identifies the combination.
func (t *tournament) Name() string {
	return "tournament(" + t.a.Name() + "," + t.b.Name() + ")"
}
