package branch

import "testing"

func TestTournamentPicksBetterComponent(t *testing.T) {
	// Alternating pattern: the gshare component learns it, bimodal
	// cannot; the tournament must converge to gshare's accuracy (in the
	// shallow, Update-driven regime where gshare's resolve-time history
	// is consistent).
	p := Tournament(Bimodal(8), GShare(10, 8), 8)
	pc := 5
	misses := 0
	for iter := 0; iter < 600; iter++ {
		taken := iter%2 == 0
		if iter >= 300 && p.Predict(pc) != taken {
			misses++
		}
		p.Update(pc, taken)
	}
	if misses > 30 {
		t.Errorf("tournament missed %d/300 on an alternating pattern", misses)
	}
}

func TestTournamentPrefersStableComponent(t *testing.T) {
	// Constant-taken branch: both are fine; the tournament must be
	// essentially perfect after warmup.
	p := Tournament(Bimodal(8), GShare(10, 8), 8)
	pc := 9
	misses := 0
	for iter := 0; iter < 200; iter++ {
		if iter >= 20 && !p.Predict(pc) {
			misses++
		}
		p.Update(pc, true)
	}
	if misses > 0 {
		t.Errorf("tournament missed %d on a constant branch", misses)
	}
}

func TestTournamentName(t *testing.T) {
	p := Tournament(Static(true), Bimodal(2), 4)
	want := "tournament(static-taken,bimodal-4)"
	if p.Name() != want {
		t.Errorf("name %q, want %q", p.Name(), want)
	}
}

func TestTournamentChooserMoves(t *testing.T) {
	// Component a always right, b always wrong: the chooser must move
	// toward a and stay there.
	p := Tournament(Static(true), Static(false), 2).(*tournament)
	pc := 1
	for i := 0; i < 10; i++ {
		p.Update(pc, true) // a right, b wrong
	}
	if p.useB(pc) {
		t.Error("chooser should prefer component a")
	}
	if !p.Predict(pc) {
		t.Error("prediction should come from a (taken)")
	}
}
