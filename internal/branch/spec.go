package branch

// Speculative global history. Predictors that fold a global history
// register into their index (gshare) mispredict badly under deep
// speculation if the history is only updated at resolution: dozens of
// branches are fetched before earlier ones resolve, so the history seen
// at prediction time differs from the history the table was trained with.
// The standard fix is to shift the *predicted* direction into the history
// at fetch and rewind on misprediction; SpecPredictor exposes that
// protocol and the execution engine drives it.

// SpecPredictor is a Predictor with speculative-history management.
type SpecPredictor interface {
	Predictor
	// PredictSpec predicts the branch at pc, speculatively shifts the
	// predicted direction into the global history, and returns a snapshot
	// of the history as it was at prediction time.
	PredictSpec(pc int) (taken bool, snapshot int)
	// Resolve trains the predictor for a branch predicted under snapshot.
	// If the branch was mispredicted, the speculative history is rewound
	// to the snapshot and the actual outcome is shifted in (squashing all
	// younger speculative bits, whose branches are squashed too).
	Resolve(pc, snapshot int, taken, mispredicted bool)
}

// PredictSpec implements SpecPredictor for gshare.
func (g *gshare) PredictSpec(pc int) (bool, int) {
	snap := g.history
	taken := g.table[g.idx(pc)].taken()
	g.history = g.push(snap, taken)
	return taken, snap
}

// Resolve implements SpecPredictor for gshare: the table is trained at
// the fetch-time index.
func (g *gshare) Resolve(pc, snapshot int, taken, mispredicted bool) {
	i := (pc ^ snapshot) & g.mask
	g.table[i] = g.table[i].update(taken)
	if mispredicted {
		g.history = g.push(snapshot, taken)
	}
}

func (g *gshare) push(hist int, taken bool) int {
	h := (hist << 1) & g.hmask
	if taken {
		h |= 1
	}
	return h
}
