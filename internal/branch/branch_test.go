package branch

import "testing"

func TestStatic(t *testing.T) {
	st := Static(true)
	snt := Static(false)
	for pc := 0; pc < 10; pc++ {
		if !st.Predict(pc) || snt.Predict(pc) {
			t.Fatal("static predictors wrong")
		}
	}
	st.Update(0, false) // no-op
	if !st.Predict(0) {
		t.Error("static must not learn")
	}
	if st.Name() != "static-taken" || snt.Name() != "static-not-taken" {
		t.Error("names wrong")
	}
}

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	c = c.update(false)
	if c != 0 {
		t.Error("should saturate at 0")
	}
	c = counter(3).update(true)
	if c != 3 {
		t.Error("should saturate at 3")
	}
	if counter(1).taken() || !counter(2).taken() {
		t.Error("threshold wrong")
	}
}

func TestBimodalLearns(t *testing.T) {
	p := Bimodal(4)
	pc := 7
	// Initialized weakly taken.
	if !p.Predict(pc) {
		t.Error("initial prediction should be taken")
	}
	// Train not-taken twice; prediction flips.
	p.Update(pc, false)
	p.Update(pc, false)
	if p.Predict(pc) {
		t.Error("should predict not-taken after training")
	}
	// A single taken does not flip a saturated counter's neighborhood.
	p.Update(pc, false) // saturate at 0
	p.Update(pc, true)
	if p.Predict(pc) {
		t.Error("hysteresis: one taken should not flip from strong not-taken")
	}
	if p.Name() == "" {
		t.Error("name empty")
	}
}

func TestBimodalLoopAccuracy(t *testing.T) {
	// A loop branch taken 9 times then not taken once should be predicted
	// well by a 2-bit counter: at most 2 mispredictions per 10 iterations
	// in steady state.
	p := Bimodal(6)
	pc := 3
	misses := 0
	for iter := 0; iter < 100; iter++ {
		taken := iter%10 != 9
		if p.Predict(pc) != taken {
			misses++
		}
		p.Update(pc, taken)
	}
	if misses > 25 {
		t.Errorf("bimodal missed %d/100 on a 90%%-taken loop", misses)
	}
}

func TestGShareAlternating(t *testing.T) {
	// gshare learns an alternating pattern through history; bimodal cannot.
	g := GShare(10, 8)
	pc := 5
	misses := 0
	for iter := 0; iter < 400; iter++ {
		taken := iter%2 == 0
		if iter >= 100 && g.Predict(pc) != taken { // measure after warmup
			misses++
		}
		g.Update(pc, taken)
	}
	if misses > 10 {
		t.Errorf("gshare missed %d/300 on alternating pattern", misses)
	}
	if g.Name() == "" {
		t.Error("name empty")
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(4)
	if b.Predict(10) != -1 {
		t.Error("cold BTB should return -1")
	}
	b.Update(10, 42)
	if b.Predict(10) != 42 {
		t.Error("BTB should return recorded target")
	}
	// Aliasing entry with different pc must not hit.
	if b.Predict(10+16) != -1 {
		t.Error("aliased pc should miss (tag check)")
	}
	b.Update(10+16, 99)
	if b.Predict(10) != -1 {
		t.Error("evicted entry should miss")
	}
	if b.Predict(26) != 99 {
		t.Error("new entry should hit")
	}
}
