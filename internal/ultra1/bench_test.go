package ultra1

import (
	"fmt"
	"testing"

	"ultrascalar/internal/workload"
)

// BenchmarkRun measures the Ultrascalar I configuration — per-station
// refill, the paper's ring — through this package's entry point across
// window sizes, reporting ns per simulated cycle. Scaling the window is
// the point of the paper, so the per-cycle cost of the SoA bitmap engine
// must stay near-flat as n grows (the word-at-a-time scans touch only
// live spans and wakeups, not the whole window).
func BenchmarkRun(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ws := workload.Kernels()
			var cycles int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := ws[i%len(ws)]
				res, err := Run(w.Prog, w.Mem(), n)
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Stats.Cycles
			}
			if cycles > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/cycle")
			}
		})
	}
}
