package ultra1

import (
	"testing"

	"ultrascalar/internal/core"
	"ultrascalar/internal/fault"

	"ultrascalar/internal/memory"
	"ultrascalar/internal/ref"
	"ultrascalar/internal/vlsi"
	"ultrascalar/internal/workload"
)

func TestRunMatchesGolden(t *testing.T) {
	w := workload.Fib(15)
	want, err := ref.Run(w.Prog, w.Mem(), ref.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(w.Prog, w.Mem(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if got.Regs[3] != want.Regs[3] {
		t.Errorf("r3 = %d, want %d", got.Regs[3], want.Regs[3])
	}
}

func TestEngineConfig(t *testing.T) {
	cfg := EngineConfig(32)
	if cfg.Window != 32 || cfg.Granularity != 1 {
		t.Errorf("config %+v, want window 32 granularity 1", cfg)
	}
}

func TestModel(t *testing.T) {
	md, err := Model(64, 32, 32, memory.MConst(1), vlsi.Tech035())
	if err != nil {
		t.Fatal(err)
	}
	if md.N != 64 || md.GateDelay <= 0 || md.AreaL2() <= 0 {
		t.Errorf("bad model %+v", md)
	}
	if Name == "" {
		t.Error("name empty")
	}
}

// TestFaultRecovery: faults injected into the per-station ring (g=1) are
// detected by the golden checker and repaired by squash-and-replay, so
// the architectural result still matches the reference run.
func TestFaultRecovery(t *testing.T) {
	w := workload.Fib(12)
	want, err := ref.Run(w.Prog, w.Mem(), ref.Config{})
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	for seed := int64(1); seed <= 20; seed++ {
		plan := fault.NewPlan(seed, fault.GenParams{
			Window: 16, NumRegs: 32, MaxCycle: 120, N: 3,
		})
		var log fault.Log
		cfg := EngineConfig(16)
		cfg.FaultPlan, cfg.FaultDetect, cfg.FaultLog = plan, fault.DetectGolden, &log
		got, err := core.Run(w.Prog, w.Mem(), cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for r := range want.Regs {
			if got.Regs[r] != want.Regs[r] {
				t.Fatalf("seed %d: r%d = %d, want %d", seed, r, got.Regs[r], want.Regs[r])
			}
		}
		if !got.Mem.Equal(want.Mem) {
			t.Fatalf("seed %d: memory diverged from golden", seed)
		}
		if log.Detected != log.Recovered {
			t.Fatalf("seed %d: detected %d, recovered %d", seed, log.Detected, log.Recovered)
		}
		detected += log.Detected
	}
	if detected == 0 {
		t.Error("no fault was ever detected; injection is not reaching live state")
	}
}
