package ultra1

import (
	"testing"

	"ultrascalar/internal/memory"
	"ultrascalar/internal/ref"
	"ultrascalar/internal/vlsi"
	"ultrascalar/internal/workload"
)

func TestRunMatchesGolden(t *testing.T) {
	w := workload.Fib(15)
	want, err := ref.Run(w.Prog, w.Mem(), ref.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(w.Prog, w.Mem(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if got.Regs[3] != want.Regs[3] {
		t.Errorf("r3 = %d, want %d", got.Regs[3], want.Regs[3])
	}
}

func TestEngineConfig(t *testing.T) {
	cfg := EngineConfig(32)
	if cfg.Window != 32 || cfg.Granularity != 1 {
		t.Errorf("config %+v, want window 32 granularity 1", cfg)
	}
}

func TestModel(t *testing.T) {
	md, err := Model(64, 32, 32, memory.MConst(1), vlsi.Tech035())
	if err != nil {
		t.Fatal(err)
	}
	if md.N != 64 || md.GateDelay <= 0 || md.AreaL2() <= 0 {
		t.Errorf("bad model %+v", md)
	}
	if Name == "" {
		t.Error("name empty")
	}
}
