// Package ultra1 defines the Ultrascalar I processor (paper Sections 2-3):
// a ring of n execution stations, each holding a full copy of the logical
// register file, connected by one cyclic segmented parallel-prefix tree
// per logical register and laid out as an H-tree.
//
// Characteristics (paper Figure 11):
//
//	gate delay  Θ(log n)
//	wire delay  Θ(√n·L)            for M(n) = O(n^{1/2-ε})
//	            Θ(√n·(L + log n))  for M(n) = Θ(n^{1/2})
//	            Θ(√n·L + M(n))     for M(n) = Ω(n^{1/2+ε})
//	area        wire delay squared
//
// Stations refill individually: "Stations holding finished instructions
// are reused as soon as all earlier instructions finish."
package ultra1

import (
	"ultrascalar/internal/core"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/vlsi"
)

// Name identifies the architecture in reports.
const Name = "Ultrascalar I"

// EngineConfig returns the cycle-engine configuration of an n-station
// Ultrascalar I: per-station refill granularity.
func EngineConfig(n int) core.Config {
	return core.Config{Window: n, Granularity: 1}
}

// Run executes prog on an n-station Ultrascalar I with otherwise default
// parameters. For full control, build a core.Config from EngineConfig.
func Run(prog []isa.Inst, mem *memory.Flat, n int) (*core.Result, error) {
	return core.Run(prog, mem, EngineConfig(n))
}

// Model returns the physical model: H-tree floorplan, wire delays and the
// CSPP gate-delay path.
func Model(n, l, w int, m memory.MFunc, t vlsi.Tech) (*vlsi.Model, error) {
	return vlsi.UltraIModel(n, l, w, m, t, vlsi.UltraIOptions{})
}
