package obs

import (
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
)

// Manifest identifies the build and configuration that produced a trace,
// metrics or benchmark output, so every artifact is attributable across
// PRs and machines. It deliberately carries no wall-clock timestamp:
// stamping one would break the byte-identical-rerun property the golden
// trace tests rely on (tools that want a date add their own field).
type Manifest struct {
	Tool       string `json:"tool"`
	GoVersion  string `json:"go_version"`
	GitCommit  string `json:"git_commit"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Seed is the workload/program seed, when the run has one.
	Seed int64 `json:"seed"`
	// Config is a human-readable one-line run configuration
	// (architecture, window, cluster size, ...).
	Config string `json:"config,omitempty"`
	// Prog is the disassembled program, one instruction per line, so a
	// trace can be rendered without the original source (PCs index it).
	Prog []string `json:"prog,omitempty"`
}

// NewManifest fills a manifest with the running binary's build
// information. The git commit comes from the binary's embedded VCS
// stamp when present (go build stamps main packages built inside a
// repository), falling back to asking git directly; "unknown" when
// neither works (e.g. a test binary outside a repository).
func NewManifest(tool string) Manifest {
	return Manifest{
		Tool:       tool,
		GoVersion:  runtime.Version(),
		GitCommit:  gitCommit(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// gitCommit resolves the current commit hash, best effort.
func gitCommit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					modified = "-dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			return rev + modified
		}
	}
	// Test binaries and `go run` builds carry no VCS stamp; ask git.
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	if rev := strings.TrimSpace(string(out)); rev != "" {
		return rev
	}
	return "unknown"
}
