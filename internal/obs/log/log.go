// Package obslog is the serving stack's structured logging and
// job-scoped tracing layer: a levelled, key-typed, allocation-conscious
// logger with deterministic JSONL encoding, plus trace/span identity
// propagated through contexts so every event a job causes — admission,
// queue wait, shard runs, checkpoints, drain — carries one trace ID
// from submission to report.
//
// Determinism contract (the same discipline as internal/obs artifacts):
// a log line's bytes are a pure function of the call — field order is
// caller order, numbers are encoded canonically, and no line carries a
// timestamp unless a clock was injected. Production servers inject
// time.Now and get timestamped lines; golden tests inject nothing (or a
// fake clock) and diff bytes. The logger is a side channel: nothing in
// a job's report may ever be derived from log state.
//
// Hot-path discipline: a nil *Logger is a valid no-op, every method is
// nil-safe, and Enabled is one comparison — callers on warm paths guard
// with `if lg.Enabled(...)` so a disabled logger costs neither time nor
// allocation (the uslint hotpath fixture pins the shape). Sampled
// loggers thin high-volume call sites (per-request, per-shard) by a
// deterministic 1-in-N counter, not by randomness or wall time.
package obslog

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int8

// The levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// levelNames maps levels to their wire names.
var levelNames = [...]string{"debug", "info", "warn", "error"}

// String returns the level's wire name.
func (l Level) String() string {
	if l >= 0 && int(l) < len(levelNames) {
		return levelNames[l]
	}
	return "unknown"
}

// LevelFromString inverts String; ok is false for unknown names.
func LevelFromString(s string) (Level, bool) {
	for i, n := range levelNames {
		if n == s {
			return Level(i), true
		}
	}
	return 0, false
}

// Clock abstracts wall time. A nil clock means "no timestamps": every
// emitted line is then byte-deterministic, which is what artifact tests
// and the detorder contract want. Servers inject time.Now explicitly.
type Clock func() time.Time

// fieldKind discriminates the typed payload of a Field.
type fieldKind uint8

const (
	kindString fieldKind = iota
	kindInt
	kindFloat
	kindBool
	kindDuration
)

// Field is one key-typed log field. Fields are plain values — building
// one never allocates — and encode deterministically by kind.
type Field struct {
	Key  string
	kind fieldKind
	str  string
	num  int64
	fl   float64
}

// String fields render as JSON strings.
func String(key, v string) Field { return Field{Key: key, kind: kindString, str: v} }

// Int fields render as decimal integers.
func Int(key string, v int) Field { return Field{Key: key, kind: kindInt, num: int64(v)} }

// Int64 fields render as decimal integers.
func Int64(key string, v int64) Field { return Field{Key: key, kind: kindInt, num: v} }

// Float fields render in Go's shortest-roundtrip form.
func Float(key string, v float64) Field { return Field{Key: key, kind: kindFloat, fl: v} }

// Bool fields render as true/false.
func Bool(key string, v bool) Field {
	n := int64(0)
	if v {
		n = 1
	}
	return Field{Key: key, kind: kindBool, num: n}
}

// Duration fields render as fractional milliseconds with fixed
// three-decimal precision (canonical across platforms).
func Duration(key string, d time.Duration) Field {
	return Field{Key: key, kind: kindDuration, fl: float64(d.Nanoseconds()) / 1e6}
}

// sink is the shared back end of a logger family: one writer, one
// encode buffer, one mutex. Every logger derived from the same New call
// serializes through its sink, so concurrent components interleave at
// line granularity and the buffer is reused across lines.
type sink struct {
	mu    sync.Mutex
	w     io.Writer
	buf   []byte
	clock Clock
	drops atomic.Int64 // lines lost to write errors
}

// Options configures a root logger.
type Options struct {
	// Level is the minimum level emitted (default LevelInfo).
	Level Level
	// Clock stamps lines with a "ts" field; nil omits the field and
	// makes output byte-deterministic.
	Clock Clock
	// Component scopes the root logger ("" for none).
	Component string
}

// Logger emits structured JSONL. Loggers are immutable; With, WithTrace
// and Sampled derive children sharing the parent's sink. The zero value
// is not usable — construct with New — but a nil *Logger is a valid
// no-op recorder, so callers hold one unconditionally.
type Logger struct {
	s         *sink
	level     Level
	component string
	trace     TraceID
	every     uint64         // emit 1-in-every calls; 0 or 1 = all
	n         *atomic.Uint64 // sample counter, shared by copies
}

// New builds a root logger writing JSONL to w.
func New(w io.Writer, opts Options) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{
		s:         &sink{w: w, clock: opts.Clock, buf: make([]byte, 0, 512)},
		level:     opts.Level,
		component: opts.Component,
	}
}

// Enabled reports whether a line at lv would be emitted. It is the
// hot-path guard: one nil check and one comparison, no allocation, so
// `if lg.Enabled(LevelDebug) { lg.Debug(...) }` costs nothing when
// logging is off or the level is filtered.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.level
}

// With returns a child logger scoped to the named component. Nested
// scopes join with "/".
func (l *Logger) With(component string) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	if child.component != "" && component != "" {
		child.component = child.component + "/" + component
	} else if component != "" {
		child.component = component
	}
	return &child
}

// WithTrace returns a child logger that stamps every line with the
// trace ID, tying the line to one job's lifecycle.
func (l *Logger) WithTrace(id TraceID) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	child.trace = id
	return &child
}

// Sampled returns a child logger that emits only one call in every n —
// the hot-path thinning knob for per-request and per-shard sites. The
// counter is deterministic (call-ordinal, not time or randomness): the
// first call and every nth after it are kept. n <= 1 keeps everything.
func (l *Logger) Sampled(n int) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	if n <= 1 {
		child.every, child.n = 0, nil
		return &child
	}
	child.every = uint64(n)
	child.n = &atomic.Uint64{}
	return &child
}

// Drops returns the number of lines lost to writer errors — logging is
// best-effort by design, but the loss is counted, never silent.
func (l *Logger) Drops() int64 {
	if l == nil || l.s == nil {
		return 0
	}
	return l.s.drops.Load()
}

// Debug emits a debug-level line.
func (l *Logger) Debug(msg string, fields ...Field) { l.log(LevelDebug, msg, fields) }

// Info emits an info-level line.
func (l *Logger) Info(msg string, fields ...Field) { l.log(LevelInfo, msg, fields) }

// Warn emits a warn-level line.
func (l *Logger) Warn(msg string, fields ...Field) { l.log(LevelWarn, msg, fields) }

// Error emits an error-level line.
func (l *Logger) Error(msg string, fields ...Field) { l.log(LevelError, msg, fields) }

// log encodes and writes one line. Field order is caller order after
// the fixed prefix (ts?, level, component?, trace?, msg), so a given
// call site always produces the same bytes under the same clock.
func (l *Logger) log(lv Level, msg string, fields []Field) {
	if !l.Enabled(lv) {
		return
	}
	if l.every > 1 {
		if l.n.Add(1)%l.every != 1 {
			return
		}
	}
	s := l.s
	s.mu.Lock()
	buf := s.buf[:0]
	buf = append(buf, '{')
	if s.clock != nil {
		buf = append(buf, `"ts":"`...)
		buf = s.clock().UTC().AppendFormat(buf, time.RFC3339Nano)
		buf = append(buf, `",`...)
	}
	buf = append(buf, `"level":"`...)
	buf = append(buf, lv.String()...)
	buf = append(buf, '"')
	if l.component != "" {
		buf = append(buf, `,"component":`...)
		buf = strconv.AppendQuote(buf, l.component)
	}
	if l.trace != "" {
		buf = append(buf, `,"trace":"`...)
		buf = append(buf, l.trace...)
		buf = append(buf, '"')
	}
	buf = append(buf, `,"msg":`...)
	buf = strconv.AppendQuote(buf, msg)
	for i := range fields {
		buf = appendField(buf, &fields[i])
	}
	buf = append(buf, '}', '\n')
	s.buf = buf // keep the (possibly grown) buffer for reuse
	if _, err := s.w.Write(buf); err != nil {
		s.drops.Add(1)
	}
	s.mu.Unlock()
}

// maxJSONFloat bounds the floats encodable as JSON numbers.
const maxJSONFloat = 1.7976931348623157e308

// appendField encodes one field as `,"key":value`.
func appendField(buf []byte, f *Field) []byte {
	buf = append(buf, ',')
	buf = strconv.AppendQuote(buf, f.Key)
	buf = append(buf, ':')
	switch f.kind {
	case kindString:
		buf = strconv.AppendQuote(buf, f.str)
	case kindInt:
		buf = strconv.AppendInt(buf, f.num, 10)
	case kindFloat:
		if f.fl != f.fl || f.fl > maxJSONFloat || f.fl < -maxJSONFloat {
			buf = append(buf, "null"...) // NaN/Inf are not JSON numbers
		} else {
			buf = strconv.AppendFloat(buf, f.fl, 'g', -1, 64)
		}
	case kindBool:
		if f.num != 0 {
			buf = append(buf, "true"...)
		} else {
			buf = append(buf, "false"...)
		}
	case kindDuration:
		buf = strconv.AppendFloat(buf, f.fl, 'f', 3, 64)
	}
	return buf
}
