// Trace identity and job-lifecycle spans. A serve job's trace ID is a
// pure function of its job ID, so the same job always carries the same
// identity — across restarts, across resumed campaigns, across the log,
// the metrics and the exported trace. Spans mark the phases of a job's
// life (queue wait, admission, run, per-shard work, checkpoints, drain)
// and export as Chrome trace-event JSON, so a whole job opens in
// Perfetto next to the per-cycle simulation traces internal/obs emits.
//
// Determinism rules (see DESIGN.md "Span model"): span *identity*
// (trace ID, names, order of Start calls under a serial run) is
// deterministic; span *timing* is wall-clock by nature and therefore
// lives only in telemetry artifacts, never in reports. Tests inject a
// fake clock and pin exact bytes; production uses time.Now.

package obslog

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"ultrascalar/internal/obs"
)

// TraceID identifies one job's telemetry across logs, spans and
// metrics: 16 lowercase hex characters.
type TraceID string

// DeriveTraceID maps a job ID to its trace ID — a pure function
// (FNV-1a over the ID, finalized splitmix64-style), so every process
// that ever touches the job derives the same identity without
// coordination.
func DeriveTraceID(jobID string) TraceID {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(jobID); i++ {
		h ^= uint64(jobID[i])
		h *= prime64
	}
	// splitmix64 finalizer: avalanche the short-string FNV state.
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[h&0xf]
		h >>= 4
	}
	return TraceID(b[:])
}

// Context propagation: the serving layer roots a job's trace ID, span
// recorder and logger in the job context; the campaign runner and any
// other layer below pull them out with the From functions, all of which
// are nil-safe (absent values read back as zero).

type ctxKey int

const (
	traceIDKey ctxKey = iota
	recorderKey
	loggerKey
)

// WithTraceID returns ctx carrying the trace ID.
func WithTraceID(ctx context.Context, id TraceID) context.Context {
	return context.WithValue(ctx, traceIDKey, id)
}

// TraceIDFrom returns the context's trace ID, or "".
func TraceIDFrom(ctx context.Context) TraceID {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceIDKey).(TraceID)
	return id
}

// WithRecorder returns ctx carrying the span recorder.
func WithRecorder(ctx context.Context, r *SpanRecorder) context.Context {
	return context.WithValue(ctx, recorderKey, r)
}

// RecorderFrom returns the context's span recorder, or nil.
func RecorderFrom(ctx context.Context) *SpanRecorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(recorderKey).(*SpanRecorder)
	return r
}

// WithLogger returns ctx carrying the logger.
func WithLogger(ctx context.Context, l *Logger) context.Context {
	return context.WithValue(ctx, loggerKey, l)
}

// LoggerFrom returns the context's logger, or nil (a valid no-op).
func LoggerFrom(ctx context.Context) *Logger {
	if ctx == nil {
		return nil
	}
	l, _ := ctx.Value(loggerKey).(*Logger)
	return l
}

// SpanEvent is one completed span: a named phase of a trace with
// microsecond-resolution timing relative to the recorder's epoch (the
// first Start it ever saw).
type SpanEvent struct {
	Trace   TraceID `json:"trace"`
	Name    string  `json:"name"`
	Detail  string  `json:"detail,omitempty"`
	StartUS int64   `json:"start_us"`
	DurUS   int64   `json:"dur_us"`
}

// SpanOptions configures a recorder.
type SpanOptions struct {
	// Clock times spans; nil defaults to time.Now (the one legitimate
	// wall-clock in the span layer — timing is what spans are for).
	Clock Clock
	// Metrics, when set, receives a span.<name>_ms histogram
	// observation per completed span.
	Metrics *obs.Registry
	// Logger, when set, gets a debug line per completed span.
	Logger *Logger
	// Cap bounds the number of retained spans (default 65536); beyond
	// it new spans are counted but dropped, so a runaway job cannot
	// grow the recorder without bound.
	Cap int
}

// spanMsBounds are the span.<name>_ms histogram bucket bounds: spans
// range from sub-millisecond admissions to multi-minute campaign runs.
var spanMsBounds = []float64{0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 30000, 100000}

// SpanRecorder collects spans from every job a server runs. It is
// lock-cheap (one mutex around an index append) and bounded, so it can
// live for the whole process.
type SpanRecorder struct {
	mu       sync.Mutex
	clock    Clock
	epoch    time.Time
	epochSet bool
	spans    []SpanEvent
	capacity int
	dropped  int64
	reg      *obs.Registry
	logger   *Logger
}

// NewSpanRecorder builds a recorder.
func NewSpanRecorder(opts SpanOptions) *SpanRecorder {
	clock := opts.Clock
	if clock == nil {
		clock = time.Now //uslint:allow detorder -- spans measure wall time by definition; tests inject a fake clock
	}
	capacity := opts.Cap
	if capacity <= 0 {
		capacity = 65536
	}
	return &SpanRecorder{clock: clock, capacity: capacity, reg: opts.Metrics, logger: opts.Logger}
}

// Span is one in-flight phase; End completes it. The zero Span (from a
// nil recorder) is a valid no-op.
type Span struct {
	rec    *SpanRecorder
	trace  TraceID
	name   string
	detail string
	start  time.Time
}

// Start opens a span on the trace. Nil-safe: a nil recorder returns a
// no-op span, so call sites need no guard.
func (r *SpanRecorder) Start(trace TraceID, name, detail string) Span {
	if r == nil {
		return Span{}
	}
	r.mu.Lock()
	now := r.clock()
	if !r.epochSet {
		r.epoch, r.epochSet = now, true
	}
	r.mu.Unlock()
	return Span{rec: r, trace: trace, name: name, detail: detail, start: now}
}

// End completes the span, recording it (and its histogram observation
// and log line, when configured).
func (s Span) End() {
	r := s.rec
	if r == nil {
		return
	}
	end := r.clock()
	dur := end.Sub(s.start)
	if dur < 0 {
		dur = 0
	}
	r.mu.Lock()
	startUS := s.start.Sub(r.epoch).Microseconds()
	if startUS < 0 {
		startUS = 0
	}
	if len(r.spans) < r.capacity {
		r.spans = append(r.spans, SpanEvent{
			Trace: s.trace, Name: s.name, Detail: s.detail,
			StartUS: startUS, DurUS: dur.Microseconds(),
		})
	} else {
		r.dropped++
	}
	r.mu.Unlock()
	if r.reg != nil {
		r.reg.Histogram("span."+s.name+"_ms", spanMsBounds).
			Observe(float64(dur.Nanoseconds()) / 1e6)
	}
	if r.logger.Enabled(LevelDebug) {
		r.logger.WithTrace(s.trace).Debug("span",
			String("span", s.name), String("detail", s.detail), Duration("ms", dur))
	}
}

// Events returns a copy of the spans recorded for the trace (all traces
// when trace is ""), sorted by start time then name — a deterministic
// order for a deterministic clock.
func (r *SpanRecorder) Events(trace TraceID) []SpanEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]SpanEvent, 0, len(r.spans))
	for _, s := range r.spans {
		if trace == "" || s.Trace == trace {
			out = append(out, s)
		}
	}
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].StartUS != out[j].StartUS {
			return out[i].StartUS < out[j].StartUS
		}
		if out[i].Trace != out[j].Trace {
			return out[i].Trace < out[j].Trace
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Dropped returns the number of spans discarded at the capacity bound.
func (r *SpanRecorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Chrome trace-event export: each trace renders as one thread of a
// "jobs" process (tid assigned by first appearance in the sorted event
// order), spans as complete ("X") slices. The JSON shape matches
// internal/obs's exporter, so obs.ValidateChromeTrace accepts it and
// Perfetto loads it.

type chromeSpanEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int32          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeSpanDoc struct {
	TraceEvents     []chromeSpanEvent `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]any    `json:"otherData"`
}

// WriteChromeTrace writes the spans of one trace (or all traces when
// trace is "") as Chrome trace-event JSON.
func (r *SpanRecorder) WriteChromeTrace(w io.Writer, trace TraceID) error {
	events := r.Events(trace)
	doc := chromeSpanDoc{
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"clock_note": "1 trace tick = 1 microsecond of wall time since the recorder epoch",
		},
		TraceEvents: []chromeSpanEvent{{
			Name: "process_name", Ph: "M", Pid: 0,
			Args: map[string]any{"name": "ultrascalar jobs"},
		}},
	}
	tids := map[TraceID]int32{}
	for _, ev := range events {
		if _, ok := tids[ev.Trace]; ok {
			continue
		}
		tid := int32(len(tids))
		tids[ev.Trace] = tid
		doc.TraceEvents = append(doc.TraceEvents,
			chromeSpanEvent{Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
				Args: map[string]any{"name": "trace " + string(ev.Trace)}},
			chromeSpanEvent{Name: "thread_sort_index", Ph: "M", Pid: 0, Tid: tid,
				Args: map[string]any{"sort_index": tid}})
	}
	for _, ev := range events {
		args := map[string]any{"trace": string(ev.Trace)}
		if ev.Detail != "" {
			args["detail"] = ev.Detail
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeSpanEvent{
			Name: ev.Name, Ph: "X", Ts: ev.StartUS, Dur: ev.DurUS,
			Pid: 0, Tid: tids[ev.Trace], Args: args,
		})
	}
	b, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return fmt.Errorf("obslog: encoding chrome trace: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
