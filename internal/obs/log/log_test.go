package obslog_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	obslog "ultrascalar/internal/obs/log"
)

func TestDeterministicEncodingWithoutClock(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		lg := obslog.New(&buf, obslog.Options{Level: obslog.LevelDebug, Component: "serve"})
		lg.Info("job admitted",
			obslog.String("job", "job-000001"),
			obslog.Int("window", 256),
			obslog.Int64("seed", 7),
			obslog.Float("ipc", 3.25),
			obslog.Bool("resumed", true),
			obslog.Duration("wait", 1500*time.Microsecond),
		)
		return buf.String()
	}
	got := render()
	want := `{"level":"info","component":"serve","msg":"job admitted",` +
		`"job":"job-000001","window":256,"seed":7,"ipc":3.25,"resumed":true,"wait":1.500}` + "\n"
	if got != want {
		t.Errorf("line mismatch:\n got %q\nwant %q", got, want)
	}
	if again := render(); again != got {
		t.Errorf("same call produced different bytes:\n%q\n%q", got, again)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(got), &decoded); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
}

func TestClockStampsTimestamp(t *testing.T) {
	var buf bytes.Buffer
	fixed := time.Date(2026, 8, 7, 12, 0, 0, 123456789, time.UTC)
	lg := obslog.New(&buf, obslog.Options{Clock: func() time.Time { return fixed }})
	lg.Info("tick")
	want := `{"ts":"2026-08-07T12:00:00.123456789Z","level":"info","msg":"tick"}` + "\n"
	if buf.String() != want {
		t.Errorf("got %q, want %q", buf.String(), want)
	}
}

func TestLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	lg := obslog.New(&buf, obslog.Options{Level: obslog.LevelWarn})
	lg.Debug("nope")
	lg.Info("nope")
	lg.Warn("yes")
	lg.Error("also")
	lines := strings.Count(buf.String(), "\n")
	if lines != 2 {
		t.Errorf("got %d lines, want 2:\n%s", lines, buf.String())
	}
	if lg.Enabled(obslog.LevelInfo) || !lg.Enabled(obslog.LevelError) {
		t.Error("Enabled disagrees with the filter")
	}
}

func TestNilLoggerIsNoOp(t *testing.T) {
	var lg *obslog.Logger
	// None of these may panic; Enabled must be false.
	lg.Debug("x")
	lg.Info("x", obslog.Int("n", 1))
	lg.Warn("x")
	lg.Error("x")
	if lg.Enabled(obslog.LevelError) {
		t.Error("nil logger reports Enabled")
	}
	if lg.With("c") != nil || lg.WithTrace("t") != nil || lg.Sampled(4) != nil {
		t.Error("nil logger derivations must stay nil")
	}
	if lg.Drops() != 0 {
		t.Error("nil logger drops != 0")
	}
}

func TestComponentScoping(t *testing.T) {
	var buf bytes.Buffer
	lg := obslog.New(&buf, obslog.Options{Component: "serve"})
	lg.With("http").Info("hi")
	if !strings.Contains(buf.String(), `"component":"serve/http"`) {
		t.Errorf("nested scope missing: %s", buf.String())
	}
}

func TestTraceStamping(t *testing.T) {
	var buf bytes.Buffer
	lg := obslog.New(&buf, obslog.Options{})
	id := obslog.DeriveTraceID("job-000001")
	lg.WithTrace(id).Info("scoped")
	if !strings.Contains(buf.String(), `"trace":"`+string(id)+`"`) {
		t.Errorf("trace missing: %s", buf.String())
	}
}

func TestSampling(t *testing.T) {
	var buf bytes.Buffer
	lg := obslog.New(&buf, obslog.Options{}).Sampled(4)
	for i := 0; i < 12; i++ {
		lg.Info("s")
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Errorf("sampled 1-in-4 over 12 calls emitted %d lines, want 3", got)
	}
	// The first call is always kept, so a burst shorter than the period
	// still leaves evidence.
	buf.Reset()
	lg2 := obslog.New(&buf, obslog.Options{}).Sampled(100)
	lg2.Info("first")
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Errorf("first sampled call dropped (%d lines)", got)
	}
}

func TestConcurrentLinesStayWhole(t *testing.T) {
	var buf bytes.Buffer
	lg := obslog.New(&buf, obslog.Options{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sub := lg.With("worker")
			for i := 0; i < 50; i++ {
				sub.Info("line", obslog.Int("g", g), obslog.Int("i", i))
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("interleaved/torn line %q: %v", line, err)
		}
	}
}

// errWriter fails after n writes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, &json.UnsupportedValueError{}
	}
	w.n--
	return len(p), nil
}

func TestDropsAreCounted(t *testing.T) {
	lg := obslog.New(&errWriter{n: 2}, obslog.Options{})
	for i := 0; i < 5; i++ {
		lg.Info("x")
	}
	if got := lg.Drops(); got != 3 {
		t.Errorf("Drops = %d, want 3", got)
	}
}

func TestSpecialFloatsEncodeAsNull(t *testing.T) {
	var buf bytes.Buffer
	lg := obslog.New(&buf, obslog.Options{})
	nan := 0.0
	lg.Info("f", obslog.Float("bad", nan/nan))
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("NaN field broke JSON: %v (%s)", err, buf.String())
	}
	if v, ok := m["bad"]; !ok || v != nil {
		t.Errorf("NaN field = %v, want null", v)
	}
}
