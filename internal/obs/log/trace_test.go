package obslog_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"ultrascalar/internal/obs"
	obslog "ultrascalar/internal/obs/log"
)

func TestDeriveTraceIDStableAndDistinct(t *testing.T) {
	a := obslog.DeriveTraceID("job-000001")
	if a != obslog.DeriveTraceID("job-000001") {
		t.Error("same job ID derived different trace IDs")
	}
	if len(a) != 16 {
		t.Errorf("trace ID %q is not 16 chars", a)
	}
	for _, c := range string(a) {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			t.Errorf("trace ID %q has non-hex char %q", a, c)
		}
	}
	if a == obslog.DeriveTraceID("job-000002") {
		t.Error("adjacent job IDs collided")
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := t.Context()
	if obslog.TraceIDFrom(ctx) != "" || obslog.RecorderFrom(ctx) != nil || obslog.LoggerFrom(ctx) != nil {
		t.Error("empty context not zero-valued")
	}
	id := obslog.DeriveTraceID("job-000042")
	rec := obslog.NewSpanRecorder(obslog.SpanOptions{})
	lg := obslog.New(&bytes.Buffer{}, obslog.Options{})
	ctx = obslog.WithTraceID(ctx, id)
	ctx = obslog.WithRecorder(ctx, rec)
	ctx = obslog.WithLogger(ctx, lg)
	if obslog.TraceIDFrom(ctx) != id {
		t.Error("trace ID lost in context")
	}
	if obslog.RecorderFrom(ctx) != rec {
		t.Error("recorder lost in context")
	}
	if obslog.LoggerFrom(ctx) != lg {
		t.Error("logger lost in context")
	}
}

// fakeClock is a deterministic, advancing clock for span tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestSpanRecording(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	rec := obslog.NewSpanRecorder(obslog.SpanOptions{Clock: clk.Now, Metrics: reg})
	id := obslog.DeriveTraceID("job-000001")

	sp := rec.Start(id, "queue", "")
	clk.Advance(2 * time.Millisecond)
	sp.End()
	sp = rec.Start(id, "run", "shards=4")
	clk.Advance(30 * time.Millisecond)
	sp.End()

	events := rec.Events(id)
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Name != "queue" || events[0].StartUS != 0 || events[0].DurUS != 2000 {
		t.Errorf("queue span wrong: %+v", events[0])
	}
	if events[1].Name != "run" || events[1].StartUS != 2000 || events[1].DurUS != 30000 {
		t.Errorf("run span wrong: %+v", events[1])
	}
	if events[1].Detail != "shards=4" {
		t.Errorf("detail lost: %+v", events[1])
	}

	// Each span observed its histogram.
	snap := reg.Peek(0)
	hv, ok := snap.Histograms["span.run_ms"]
	if !ok || hv.Count != 1 {
		t.Errorf("span.run_ms histogram missing or wrong: %+v (ok=%v)", hv, ok)
	}
}

func TestSpanFilterByTrace(t *testing.T) {
	clk := newFakeClock()
	rec := obslog.NewSpanRecorder(obslog.SpanOptions{Clock: clk.Now})
	a := obslog.DeriveTraceID("job-a")
	b := obslog.DeriveTraceID("job-b")
	rec.Start(a, "run", "").End()
	rec.Start(b, "run", "").End()
	if got := len(rec.Events(a)); got != 1 {
		t.Errorf("filter by trace a: %d events, want 1", got)
	}
	if got := len(rec.Events("")); got != 2 {
		t.Errorf("all traces: %d events, want 2", got)
	}
}

func TestSpanCapacityBound(t *testing.T) {
	clk := newFakeClock()
	rec := obslog.NewSpanRecorder(obslog.SpanOptions{Clock: clk.Now, Cap: 3})
	id := obslog.DeriveTraceID("job-x")
	for i := 0; i < 5; i++ {
		rec.Start(id, "s", "").End()
	}
	if got := len(rec.Events(id)); got != 3 {
		t.Errorf("retained %d spans, want cap 3", got)
	}
	if got := rec.Dropped(); got != 2 {
		t.Errorf("Dropped = %d, want 2", got)
	}
}

func TestNilRecorderNoOps(t *testing.T) {
	var rec *obslog.SpanRecorder
	sp := rec.Start("t", "run", "") // must not panic
	sp.End()
	if rec.Events("") != nil {
		t.Error("nil recorder returned events")
	}
	if rec.Dropped() != 0 {
		t.Error("nil recorder dropped != 0")
	}
}

func TestSpanDebugLogCarriesTrace(t *testing.T) {
	var buf bytes.Buffer
	lg := obslog.New(&buf, obslog.Options{Level: obslog.LevelDebug})
	clk := newFakeClock()
	rec := obslog.NewSpanRecorder(obslog.SpanOptions{Clock: clk.Now, Logger: lg})
	id := obslog.DeriveTraceID("job-000007")
	sp := rec.Start(id, "checkpoint", "shard=3")
	clk.Advance(time.Millisecond)
	sp.End()
	line := buf.String()
	if !strings.Contains(line, `"trace":"`+string(id)+`"`) {
		t.Errorf("span log line missing trace: %s", line)
	}
	if !strings.Contains(line, `"span":"checkpoint"`) {
		t.Errorf("span log line missing span name: %s", line)
	}
}

func TestChromeTraceExportValidates(t *testing.T) {
	clk := newFakeClock()
	rec := obslog.NewSpanRecorder(obslog.SpanOptions{Clock: clk.Now})
	a := obslog.DeriveTraceID("job-000001")
	b := obslog.DeriveTraceID("job-000002")
	sp := rec.Start(a, "queue", "")
	clk.Advance(time.Millisecond)
	sp.End()
	sp = rec.Start(a, "run", "shards=2")
	sp2 := rec.Start(b, "queue", "")
	clk.Advance(5 * time.Millisecond)
	sp.End()
	sp2.End()

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf, ""); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Errorf("exported trace fails obs validator: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `"ultrascalar jobs"`) {
		t.Error("process_name metadata missing")
	}
	if !strings.Contains(out, "trace "+string(a)) || !strings.Contains(out, "trace "+string(b)) {
		t.Error("per-trace thread names missing")
	}

	// Determinism: same spans, same bytes.
	var buf2 bytes.Buffer
	if err := rec.WriteChromeTrace(&buf2, ""); err != nil {
		t.Fatalf("second export: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two exports of the same recorder differ")
	}

	// Single-trace export filters.
	var buf3 bytes.Buffer
	if err := rec.WriteChromeTrace(&buf3, b); err != nil {
		t.Fatalf("filtered export: %v", err)
	}
	if strings.Contains(buf3.String(), "trace "+string(a)) {
		t.Error("filtered export leaked other trace")
	}
}

func TestConcurrentSpansRace(t *testing.T) {
	rec := obslog.NewSpanRecorder(obslog.SpanOptions{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := obslog.DeriveTraceID("job-" + string(rune('a'+g)))
			for i := 0; i < 100; i++ {
				rec.Start(id, "s", "").End()
			}
		}(g)
	}
	wg.Wait()
	if got := len(rec.Events("")); got != 800 {
		t.Errorf("got %d spans, want 800", got)
	}
}
