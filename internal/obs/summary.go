package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Trace summarization: the ustrace CLI's "what happened" view over a
// recorded event stream — IPC over time, a window-occupancy heat strip,
// and squash storms (bursts of misprediction recovery). Everything is
// computed from the events alone so it works on traces from any source.

// Storm is one burst of squash events: cycles with squashes separated by
// gaps of at most stormGap cycles are grouped into one storm.
type Storm struct {
	Start, End int64 // cycle range, inclusive
	Squashed   int   // stations squashed during the storm
}

// stormGap is the largest squash-free cycle gap inside one storm.
const stormGap = 16

// Summary is the digest of one trace.
type Summary struct {
	FirstCycle, LastCycle int64
	Fetched               int
	Retired               int
	Squashed              int
	Forwards              int

	// BucketSize is the cycle width of each time bucket; RetiredPer and
	// MeanOcc have one entry per bucket.
	BucketSize int64
	RetiredPer []int
	MeanOcc    []float64
	MaxOcc     int

	// LocalOperands counts EvForward events with distance 1 (operand
	// produced by the immediately preceding station) against all
	// station-sourced forwards — the paper's Section 7 locality figure.
	LocalOperands, StationOperands int

	Storms []Storm
}

// Summarize digests events (chronological order, as recorded) into at
// most buckets time buckets.
func Summarize(events []Event, buckets int) Summary {
	var s Summary
	if len(events) == 0 {
		return s
	}
	if buckets < 1 {
		buckets = 1
	}
	s.FirstCycle = events[0].Cycle
	s.LastCycle = events[len(events)-1].Cycle
	span := s.LastCycle - s.FirstCycle + 1
	s.BucketSize = (span + int64(buckets) - 1) / int64(buckets)
	if s.BucketSize < 1 {
		s.BucketSize = 1
	}
	n := int((span + s.BucketSize - 1) / s.BucketSize)
	s.RetiredPer = make([]int, n)
	s.MeanOcc = make([]float64, n)
	occWeight := make([]float64, n) // occupied-station-cycles per bucket

	occ := 0
	prevCycle := s.FirstCycle
	var squashCycles []int64
	squashAt := make(map[int64]int)
	flush := func(upTo int64) {
		// Attribute occ station-cycles to each cycle in [prevCycle, upTo).
		for c := prevCycle; c < upTo; c++ {
			occWeight[int((c-s.FirstCycle)/s.BucketSize)] += float64(occ)
		}
		prevCycle = upTo
	}
	for _, ev := range events {
		if ev.Cycle > prevCycle {
			flush(ev.Cycle)
		}
		b := int((ev.Cycle - s.FirstCycle) / s.BucketSize)
		switch ev.Kind {
		case EvFetch:
			s.Fetched++
			occ++
		case EvRetire:
			s.Retired++
			s.RetiredPer[b]++
			occ--
		case EvSquash:
			s.Squashed++
			occ--
			if squashAt[ev.Cycle] == 0 {
				squashCycles = append(squashCycles, ev.Cycle)
			}
			squashAt[ev.Cycle]++
		case EvForward:
			s.Forwards++
			if ev.Arg >= 1 {
				s.StationOperands++
				if ev.Arg == 1 {
					s.LocalOperands++
				}
			}
		}
		if occ > s.MaxOcc {
			s.MaxOcc = occ
		}
	}
	flush(s.LastCycle + 1)
	for i := range s.MeanOcc {
		width := s.BucketSize
		if i == n-1 {
			if rem := span % s.BucketSize; rem != 0 {
				width = rem
			}
		}
		s.MeanOcc[i] = occWeight[i] / float64(width)
	}

	// Group squash cycles into storms.
	sort.Slice(squashCycles, func(i, j int) bool { return squashCycles[i] < squashCycles[j] })
	for _, c := range squashCycles {
		if len(s.Storms) > 0 && c-s.Storms[len(s.Storms)-1].End <= stormGap {
			st := &s.Storms[len(s.Storms)-1]
			st.End = c
			st.Squashed += squashAt[c]
		} else {
			s.Storms = append(s.Storms, Storm{Start: c, End: c, Squashed: squashAt[c]})
		}
	}
	sort.SliceStable(s.Storms, func(i, j int) bool { return s.Storms[i].Squashed > s.Storms[j].Squashed })
	return s
}

// heatRamp maps a 0..1 intensity to a character.
const heatRamp = " .:-=+*#%@"

func heatChar(x float64) byte {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	i := int(x * float64(len(heatRamp)-1))
	return heatRamp[i]
}

// String renders the summary as the ustrace report.
func (s Summary) String() string {
	var b strings.Builder
	cycles := s.LastCycle - s.FirstCycle + 1
	fmt.Fprintf(&b, "trace: cycles %d..%d (%d), fetched=%d retired=%d squashed=%d\n",
		s.FirstCycle, s.LastCycle, cycles, s.Fetched, s.Retired, s.Squashed)
	if cycles > 0 {
		fmt.Fprintf(&b, "IPC (retired/cycle over trace): %.3f\n", float64(s.Retired)/float64(cycles))
	}
	if s.StationOperands > 0 {
		fmt.Fprintf(&b, "operand locality: %d/%d station-sourced operands from the immediate predecessor (%.1f%%)\n",
			s.LocalOperands, s.StationOperands,
			100*float64(s.LocalOperands)/float64(s.StationOperands))
	}

	if len(s.RetiredPer) > 1 {
		maxR := 0
		for _, r := range s.RetiredPer {
			if r > maxR {
				maxR = r
			}
		}
		fmt.Fprintf(&b, "\nIPC over time (bucket = %d cycles, peak %.2f IPC):\n  ",
			s.BucketSize, float64(maxR)/float64(s.BucketSize))
		for _, r := range s.RetiredPer {
			x := 0.0
			if maxR > 0 {
				x = float64(r) / float64(maxR)
			}
			b.WriteByte(heatChar(x))
		}
		b.WriteByte('\n')

		fmt.Fprintf(&b, "\noccupancy heat (peak %d stations):\n  ", s.MaxOcc)
		for _, o := range s.MeanOcc {
			x := 0.0
			if s.MaxOcc > 0 {
				x = o / float64(s.MaxOcc)
			}
			b.WriteByte(heatChar(x))
		}
		b.WriteByte('\n')
	}

	if len(s.Storms) > 0 {
		fmt.Fprintf(&b, "\nsquash storms (top %d of %d):\n", min(5, len(s.Storms)), len(s.Storms))
		for i, st := range s.Storms {
			if i == 5 {
				break
			}
			fmt.Fprintf(&b, "  cycles %6d..%-6d  %4d squashed\n", st.Start, st.End, st.Squashed)
		}
	}
	return b.String()
}
