package obs

import (
	"bytes"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Cycle: 0, Seq: 0, Kind: EvFetch, PC: 0, Slot: 0, Arg: 1},
		{Cycle: 0, Seq: 1, Kind: EvFetch, PC: 1, Slot: 1, Arg: 2},
		{Cycle: 1, Seq: 0, Kind: EvForward, PC: 0, Slot: 0, Arg: -1},
		{Cycle: 1, Seq: 0, Kind: EvIssue, PC: 0, Slot: 0, Arg: 1},
		{Cycle: 1, Seq: 0, Kind: EvExec, PC: 0, Slot: 0, Arg: 0},
		{Cycle: 2, Seq: 1, Kind: EvForward, PC: 1, Slot: 1, Arg: 1},
		{Cycle: 2, Seq: 1, Kind: EvIssue, PC: 1, Slot: 1, Arg: 1},
		{Cycle: 3, Seq: 1, Kind: EvExec, PC: 1, Slot: 1, Arg: 0},
		{Cycle: 4, Seq: 0, Kind: EvRetire, PC: 0, Slot: 0, Arg: 0},
		{Cycle: 4, Seq: 2, Kind: EvSquash, PC: 2, Slot: 2, Arg: 1},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	man := Manifest{Tool: "test", GoVersion: "go0", GitCommit: "abc", Seed: 7,
		Config: "arch=ultra1 n=4", Prog: []string{"li r1, 1", "halt"}}
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, man, events); err != nil {
		t.Fatal(err)
	}
	gotMan, gotEvents, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotMan.Tool != man.Tool || gotMan.Seed != man.Seed || gotMan.Config != man.Config {
		t.Fatalf("manifest round-trip: got %+v", gotMan)
	}
	if len(gotMan.Prog) != 2 || gotMan.Prog[1] != "halt" {
		t.Fatalf("prog round-trip: got %v", gotMan.Prog)
	}
	if len(gotEvents) != len(events) {
		t.Fatalf("got %d events, want %d", len(gotEvents), len(events))
	}
	for i := range events {
		if gotEvents[i] != events[i] {
			t.Errorf("event %d: got %+v, want %+v", i, gotEvents[i], events[i])
		}
	}
}

func TestJSONLDeterministic(t *testing.T) {
	man := Manifest{Tool: "det"}
	events := sampleEvents()
	var b1, b2 bytes.Buffer
	if err := WriteJSONL(&b1, man, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b2, man, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two JSONL serializations differ")
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, _, err := ReadJSONL(strings.NewReader("{\"type\":\"wat\"}\n")); err == nil {
		t.Error("unknown record type must error")
	}
	if _, _, err := ReadJSONL(strings.NewReader("{\"type\":\"event\",\"kind\":\"zap\"}\n")); err == nil {
		t.Error("unknown event kind must error")
	}
	if _, _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("non-JSON line must error")
	}
}

func TestReadJSONLErrorsCarryLineNumber(t *testing.T) {
	// A decode failure mid-stream names the offending line.
	in := "{\"type\":\"manifest\"}\n{\"type\":\"event\",\"kind\":\"fetch\"}\nnot json\n"
	_, _, err := ReadJSONL(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("decode error lost its line number: %v", err)
	}
	// So does a scanner failure (here: a line past the size bound). The
	// scanner dies before delivering the line, so the error points one
	// past the last line it produced.
	big := "{\"type\":\"manifest\"}\n" + strings.Repeat("x", 1<<24+1) + "\n"
	_, _, err = ReadJSONL(strings.NewReader(big))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("scanner error lost its line number: %v", err)
	}
}

func TestChromeTraceValidatesAndRenders(t *testing.T) {
	man := Manifest{Tool: "test", Prog: []string{"li r1, 1", "add r2, r1, r1", "halt"}}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, man, sampleEvents(), nil); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if err := ValidateChromeTrace(out); err != nil {
		t.Fatalf("emitted trace fails validation: %v", err)
	}
	s := string(out)
	for _, want := range []string{
		`"station 0"`,   // thread metadata per slot
		`"li r1, 1"`,    // instruction rendered through man.Prog
		`"squash"`,      // instant event
		`"ph": "X"`,     // duration slices
		`"src_dist"`,    // operand distances ride in args
		`"clock_note"`,  // otherData
		`"ultrascalar"`, // process name
	} {
		if !strings.Contains(s, want) {
			t.Errorf("chrome trace lacks %s", want)
		}
	}
}

func TestChromeTraceNameFallback(t *testing.T) {
	var buf bytes.Buffer
	// No manifest program and no resolver: slices fall back to "pc N".
	if err := WriteChromeTrace(&buf, Manifest{}, sampleEvents(), nil); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"pc 0"`) {
		t.Error("expected pc-number fallback names")
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	for name, doc := range map[string]string{
		"not json":     "nope",
		"no events":    `{"foo": 1}`,
		"bad phase":    `{"traceEvents":[{"name":"x","ph":"Q","pid":0,"tid":0}]}`,
		"missing ts":   `{"traceEvents":[{"name":"x","ph":"X","pid":0,"tid":0}]}`,
		"negative ts":  `{"traceEvents":[{"name":"x","ph":"X","ts":-1,"pid":0,"tid":0}]}`,
		"missing pid":  `{"traceEvents":[{"name":"x","ph":"X","ts":1,"tid":0}]}`,
		"missing name": `{"traceEvents":[{"ph":"X","ts":1,"pid":0,"tid":0}]}`,
	} {
		if err := ValidateChromeTrace([]byte(doc)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleEvents(), 5)
	if s.Fetched != 2 || s.Retired != 1 || s.Squashed != 1 {
		t.Fatalf("summary counts: %+v", s)
	}
	if s.StationOperands != 1 || s.LocalOperands != 1 {
		t.Fatalf("operand locality: %+v", s)
	}
	if len(s.Storms) != 1 || s.Storms[0].Squashed != 1 {
		t.Fatalf("storms: %+v", s.Storms)
	}
	if s.MaxOcc != 2 {
		t.Fatalf("MaxOcc = %d, want 2", s.MaxOcc)
	}
	out := s.String()
	for _, want := range []string{"IPC", "occupancy heat", "squash storms", "operand locality"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output lacks %q:\n%s", want, out)
		}
	}
	// Degenerate inputs must not panic.
	_ = Summarize(nil, 10).String()
	_ = Summarize(sampleEvents()[:1], 0).String()
}

func TestManifest(t *testing.T) {
	m := NewManifest("unit")
	if m.Tool != "unit" {
		t.Errorf("tool = %q", m.Tool)
	}
	if m.GoVersion == "" || m.GOOS == "" || m.GOARCH == "" || m.GOMAXPROCS < 1 {
		t.Errorf("build fields unfilled: %+v", m)
	}
	if m.GitCommit == "" {
		t.Error("git commit must be filled (or \"unknown\")")
	}
}

// TestReadJSONLOversizedLine: a record far beyond bufio.Scanner's
// default 64 KiB token cap must still parse — large campaign checkpoint
// records hit this in the field. JSON tolerates whitespace between
// tokens, so the line is inflated without changing its meaning.
func TestReadJSONLOversizedLine(t *testing.T) {
	pad := strings.Repeat(" ", 96*1024)
	line := `{"type":` + pad + `"event","kind":"fetch","cycle":3,"seq":7,"pc":1,"slot":2}`
	if len(line) <= 64*1024 {
		t.Fatalf("test line only %d bytes; not past the default scanner cap", len(line))
	}
	man, events, err := ReadJSONL(strings.NewReader(line + "\n"))
	if err != nil {
		t.Fatalf("ReadJSONL on a %d-byte line: %v", len(line), err)
	}
	_ = man
	if len(events) != 1 || events[0].Kind != EvFetch || events[0].Seq != 7 {
		t.Fatalf("oversized line decoded wrong: %+v", events)
	}
}

// TestNewLineScannerCap: the shared scanner accepts lines right up to
// its documented ceiling and still fails loudly beyond it.
func TestNewLineScannerCap(t *testing.T) {
	big := strings.Repeat("a", 1<<20)
	sc := NewLineScanner(strings.NewReader(big + "\n" + "tail"))
	if !sc.Scan() || len(sc.Bytes()) != 1<<20 {
		t.Fatalf("1 MiB line rejected: err=%v", sc.Err())
	}
	if !sc.Scan() || sc.Text() != "tail" {
		t.Fatal("scanner lost the line after the big one")
	}
}
