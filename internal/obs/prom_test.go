package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestLabeledNameRoundTrip(t *testing.T) {
	name := LabeledName("serve.requests", Label{"route", "GET /jobs"}, Label{"code", "200"})
	if name != "serve.requests{route=GET /jobs,code=200}" {
		t.Errorf("LabeledName = %q", name)
	}
	base, labels := SplitLabeledName(name)
	if base != "serve.requests" || len(labels) != 2 ||
		labels[0] != (Label{"route", "GET /jobs"}) || labels[1] != (Label{"code", "200"}) {
		t.Errorf("SplitLabeledName = %q, %+v", base, labels)
	}
	base, labels = SplitLabeledName("plain.name")
	if base != "plain.name" || labels != nil {
		t.Errorf("unlabeled split = %q, %+v", base, labels)
	}
}

func TestWritePrometheusDeterministicAndValid(t *testing.T) {
	r := NewRegistry()
	r.Counter(LabeledName("serve.requests", Label{"route", "GET /jobs"}, Label{"code", "200"})).Add(5)
	r.Counter(LabeledName("serve.requests", Label{"route", "POST /jobs"}, Label{"code", "202"})).Add(2)
	r.Counter(LabeledName("serve.errors", Label{"kind", "timeout"})).Inc()
	r.Gauge("serve.queue_depth").Set(3)
	h := r.Histogram("serve.latency_ms", []float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5000)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Peek(0)); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	if err := ValidatePrometheus(buf.Bytes()); err != nil {
		t.Fatalf("own exposition fails validation: %v\n%s", err, out)
	}

	for _, want := range []string{
		"# TYPE serve_requests counter\n",
		`serve_requests{route="GET /jobs",code="200"} 5` + "\n",
		`serve_requests{route="POST /jobs",code="202"} 2` + "\n",
		`serve_errors{kind="timeout"} 1` + "\n",
		"# TYPE serve_queue_depth gauge\nserve_queue_depth 3\n",
		"# TYPE serve_latency_ms histogram\n",
		`serve_latency_ms_bucket{le="1"} 1` + "\n",
		`serve_latency_ms_bucket{le="10"} 2` + "\n",
		`serve_latency_ms_bucket{le="100"} 2` + "\n",
		`serve_latency_ms_bucket{le="+Inf"} 3` + "\n",
		"serve_latency_ms_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	var buf2 bytes.Buffer
	if err := WritePrometheus(&buf2, r.Peek(0)); err != nil {
		t.Fatalf("second write: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two expositions of the same snapshot differ")
	}
}

func TestValidatePrometheusRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"no trailing newline", "# TYPE a counter\na 1"},
		{"sample without TYPE", "orphan 1\n"},
		{"duplicate TYPE", "# TYPE a counter\n# TYPE a gauge\na 1\n"},
		{"unknown kind", "# TYPE a widget\na 1\n"},
		{"bad value", "# TYPE a counter\na x\n"},
		{"bad name", "# TYPE a counter\n2a 1\n"},
		{"unterminated labels", "# TYPE a counter\na{b=\"c 1\n"},
		{"bare histogram sample", "# TYPE a histogram\na 1\n"},
		{"no families", "\n"},
	}
	for _, tc := range cases {
		if err := ValidatePrometheus([]byte(tc.in)); err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
	good := "# TYPE a counter\na{b=\"x\\\"y\"} 1\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 0\nh_sum 0\nh_count 0\n"
	if err := ValidatePrometheus([]byte(good)); err != nil {
		t.Errorf("good exposition rejected: %v", err)
	}
}

func TestHistogramQuantile(t *testing.T) {
	hv := HistogramValue{
		Count: 100,
		Buckets: []Bucket{
			{Le: 1, Count: 50},
			{Le: 10, Count: 40},
			{Le: 100, Count: 9},
			{Le: math.Inf(1), Count: 1},
		},
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.5, 1},    // exactly consumes the first bucket
		{0.25, 0.5}, // halfway through [0,1]
		{0.9, 10},   // exactly consumes the second bucket
		{0.7, 5.5},  // halfway through (1,10]
		{0.99, 100}, // exactly consumes the third bucket
		{1.0, 100},  // lands in +Inf: clamps to last finite bound
		{0, 0},
	}
	for _, tc := range cases {
		if got := hv.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := (HistogramValue{}).Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	// Out-of-range q clamps.
	if got := hv.Quantile(2); got != 100 {
		t.Errorf("Quantile(2) = %v, want 100", got)
	}
	if got := hv.Quantile(-1); got != 0 {
		t.Errorf("Quantile(-1) = %v, want 0", got)
	}
}

func TestBucketUnmarshalRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(50)
	hv := h.value()
	b, err := hv.Buckets[2].MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Bucket
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatalf("UnmarshalJSON(%s): %v", b, err)
	}
	if !math.IsInf(back.Le, 1) || back.Count != 1 {
		t.Errorf("+Inf bucket round trip = %+v", back)
	}
	var finite Bucket
	if err := finite.UnmarshalJSON([]byte(`{"le":10,"count":1}`)); err != nil || finite.Le != 10 {
		t.Errorf("finite bucket round trip = %+v, %v", finite, err)
	}
	var bad Bucket
	if err := bad.UnmarshalJSON([]byte(`{"le":"nope","count":1}`)); err == nil {
		t.Error("bad bound string accepted")
	}
}
