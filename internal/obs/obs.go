// Package obs is the simulator's observability layer: an opt-in,
// allocation-free pipeline event tracer, a counter/gauge/histogram
// metrics registry with periodic snapshots, exporters (Chrome
// trace-event JSON for Perfetto, compact JSONL), and a run manifest that
// stamps every trace, metrics and benchmark output with the build and
// configuration that produced it.
//
// The paper's claims live in per-station, per-cycle behaviour — operand
// locality (Section 7: "half of the communications paths from one
// station to its successor are completely local"), window occupancy, and
// squash cascades — which the end-of-run aggregates in core.Stats cannot
// show. The tracer records exactly those events; the engine hooks sit
// behind a nil check so the measured hot path stays zero-alloc and
// hotpathalloc-clean when tracing is off.
//
// Tracing discipline: Record is declared //uslint:hotpath and must never
// allocate. Events go into a preallocated slab by index assignment
// (never append); when the slab fills, the tracer either drops new
// events (NewTracer) or overwrites the oldest (NewRingTracer). Both
// policies keep recording O(1) with zero heap traffic, so a trace run
// perturbs the behaviour it observes as little as possible.
package obs

// EventKind classifies one pipeline event.
type EventKind uint8

// The pipeline event kinds.
const (
	// EvFetch: an instruction entered an execution station.
	// Arg = predicted next PC (-1 when unknown: halt, cold-BTB JALR).
	EvFetch EventKind = iota
	// EvIssue: the station's operands arrived and execution started
	// (or a memory request was granted). Arg = remaining latency.
	EvIssue
	// EvExec: the result became available to consumers.
	EvExec
	// EvRetire: the instruction committed at the head of the window.
	EvRetire
	// EvSquash: the station was squashed by a misprediction.
	// Arg = PC of the mispredicted branch that caused it.
	EvSquash
	// EvForward: one source operand was forwarded to the station at
	// issue. Arg = producer distance in dynamic instructions
	// (1 = immediate predecessor), or -1 for the committed register file.
	EvForward
	// EvFaultInject: a scheduled fault landed on live microarchitectural
	// state (fault-injection runs only). Arg = fault site.
	EvFaultInject
	// EvFaultDetect: a checker refused to commit a retiring instruction
	// (Arg = 0), or the livelock watchdog fired (Arg = 1).
	EvFaultDetect
	// EvFaultRecover: squash-and-replay fault recovery completed.
	// Arg = number of stations squashed; PC = the resumed fetch target.
	EvFaultRecover

	numEventKinds
)

// eventKindNames maps kinds to their wire names (JSONL "kind" field).
var eventKindNames = [numEventKinds]string{
	"fetch", "issue", "exec", "retire", "squash", "forward",
	"fault-inject", "fault-detect", "fault-recover",
}

// String returns the event kind's wire name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// KindFromString inverts String; ok is false for unknown names.
func KindFromString(s string) (EventKind, bool) {
	for i, n := range eventKindNames {
		if n == s {
			return EventKind(i), true
		}
	}
	return 0, false
}

// Event is one pipeline event. All payloads are plain integers so a
// recorded event never references heap memory.
type Event struct {
	Cycle int64     // simulation cycle the event occurred in
	Seq   int64     // dynamic sequence number of the instruction
	Kind  EventKind //
	PC    int32     // static program counter
	Slot  int32     // execution-station slot
	Arg   int32     // kind-specific payload (see the kind constants)
}

// Tracer records pipeline events into a preallocated slab. The zero
// Tracer is not usable; construct with NewTracer or NewRingTracer. A nil
// *Tracer is a valid no-op recorder, so callers may hold one
// unconditionally and guard only the hot-path call.
type Tracer struct {
	buf     []Event
	n       int   // next write index
	ring    bool  // overwrite-oldest instead of drop-newest
	wrapped bool  // ring mode: the buffer has wrapped at least once
	dropped int64 // events discarded because the slab was full
	total   int64 // events offered, including dropped/overwritten
}

// NewTracer returns a tracer that keeps the FIRST capacity events and
// drops (but counts) the rest — the right policy for bounded traces of a
// run's beginning, and for golden fixtures.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// NewRingTracer returns a tracer that keeps the LAST capacity events,
// overwriting the oldest — the flight-recorder policy for "what led up
// to this anomaly" captures on long runs.
func NewRingTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Event, capacity), ring: true}
}

// Record appends one event. It is the tracer's hot path: O(1), never
// allocates, and writes by index into the preallocated slab.
//
//uslint:hotpath
func (t *Tracer) Record(kind EventKind, cycle, seq int64, pc, slot, arg int32) {
	if t == nil {
		return
	}
	t.total++
	if t.n == len(t.buf) {
		if !t.ring {
			t.dropped++
			return
		}
		t.n = 0
		t.wrapped = true
	}
	t.buf[t.n] = Event{Cycle: cycle, Seq: seq, Kind: kind, PC: pc, Slot: slot, Arg: arg}
	t.n++
}

// Events returns the recorded events in chronological order. The slice
// is a fresh copy; the tracer may keep recording afterwards.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		return append([]Event(nil), t.buf[:t.n]...)
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.n:]...)
	return append(out, t.buf[:t.n]...)
}

// Len returns the number of events currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if t.wrapped {
		return len(t.buf)
	}
	return t.n
}

// Cap returns the slab capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Dropped returns the number of events discarded because the slab was
// full (always 0 in ring mode, which overwrites instead).
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Total returns the number of events offered to the tracer, including
// dropped and overwritten ones.
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Reset clears the tracer for reuse without releasing the slab.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.n, t.wrapped, t.dropped, t.total = 0, false, 0, 0
}
