package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tasks")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("tasks") != c {
		t.Fatal("Counter lookup must return the same instrument")
	}

	g := r.Gauge("occupancy")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", got)
	}

	h := r.Histogram("latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("hist count = %d, want 5", h.Count())
	}
	if h.Sum() != 5060.5 {
		t.Fatalf("hist sum = %v, want 5060.5", h.Sum())
	}
	hv := h.value()
	wantCounts := []int64{1, 2, 1, 1} // <=1, <=10, <=100, +Inf
	for i, w := range wantCounts {
		if hv.Buckets[i].Count != w {
			t.Errorf("bucket %d count = %d, want %d", i, hv.Buckets[i].Count, w)
		}
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("Gauge(\"x\") after Counter(\"x\") must panic")
		}
	}()
	r.Gauge("x")
}

func TestSnapshotSeries(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	g := r.Gauge("v")
	for i := 1; i <= 3; i++ {
		c.Inc()
		g.Set(float64(10 * i))
		r.Snapshot(int64(100 * i))
	}
	snaps := r.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots, want 3", len(snaps))
	}
	for i, s := range snaps {
		if s.Tick != int64(100*(i+1)) {
			t.Errorf("snapshot %d tick = %d", i, s.Tick)
		}
		if s.Counters["n"] != int64(i+1) {
			t.Errorf("snapshot %d counter = %d, want %d", i, s.Counters["n"], i+1)
		}
		if s.Gauges["v"] != float64(10*(i+1)) {
			t.Errorf("snapshot %d gauge = %v", i, s.Gauges["v"])
		}
	}
}

// TestWriteJSONDeterministic: two serializations of the same series are
// byte-identical (map keys sort under encoding/json), and +Inf histogram
// bounds survive as the "+Inf" string.
func TestWriteJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Histogram("h", []float64{1, 2}).Observe(7)
	r.Gauge("z").Set(1)
	r.Snapshot(0)

	man := Manifest{Tool: "test"}
	var b1, b2 bytes.Buffer
	if err := r.WriteJSON(&b1, man); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b2, man); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two serializations differ")
	}
	out := b1.String()
	if !strings.Contains(out, `"+Inf"`) {
		t.Errorf("output lacks the +Inf bucket:\n%s", out)
	}
	if strings.Index(out, `"a.count"`) > strings.Index(out, `"b.count"`) {
		t.Error("counter keys are not sorted")
	}
}

// TestConcurrentInstruments exercises the lock-free update path under
// the race detector, the way the parallel experiment pool uses it.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("tasks").Inc()
				r.Gauge("depth").Set(float64(i))
				r.Histogram("ms", []float64{1, 10}).Observe(float64(i % 20))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("tasks").Value(); got != 8000 {
		t.Fatalf("tasks = %d, want 8000", got)
	}
	if got := r.Histogram("ms", nil).Count(); got != 8000 {
		t.Fatalf("observations = %d, want 8000", got)
	}
}
