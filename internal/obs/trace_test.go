package obs

import (
	"testing"
)

func TestTracerDropNewest(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Record(EvFetch, int64(i), int64(i), int32(i), 0, 0)
	}
	if got := tr.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	if got := tr.Total(); got != 5 {
		t.Fatalf("Total = %d, want 5", got)
	}
	evs := tr.Events()
	for i, ev := range evs {
		if ev.Cycle != int64(i) {
			t.Errorf("event %d: cycle %d, want %d (drop-newest keeps the first events)", i, ev.Cycle, i)
		}
	}
}

func TestRingTracerKeepsLatest(t *testing.T) {
	tr := NewRingTracer(3)
	for i := 0; i < 5; i++ {
		tr.Record(EvRetire, int64(i), int64(i), 0, 0, 0)
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0 (ring overwrites)", got)
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("len(Events) = %d, want 3", len(evs))
	}
	for i, want := range []int64{2, 3, 4} {
		if evs[i].Cycle != want {
			t.Errorf("event %d: cycle %d, want %d (ring keeps the last events, in order)", i, evs[i].Cycle, want)
		}
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewRingTracer(2)
	for i := 0; i < 5; i++ {
		tr.Record(EvIssue, int64(i), 0, 0, 0, 0)
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Fatalf("after Reset: Len=%d Total=%d Dropped=%d, want zeros", tr.Len(), tr.Total(), tr.Dropped())
	}
	tr.Record(EvIssue, 9, 0, 0, 0, 0)
	if evs := tr.Events(); len(evs) != 1 || evs[0].Cycle != 9 {
		t.Fatalf("after Reset, Events = %v", evs)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Record(EvFetch, 0, 0, 0, 0, 0) // must not panic
	if tr.Events() != nil || tr.Len() != 0 || tr.Cap() != 0 || tr.Total() != 0 {
		t.Fatal("nil tracer must observe nothing")
	}
	tr.Reset()
}

// TestRecordDoesNotAllocate pins the hot-path contract the engine relies
// on: recording an event into a live slab performs zero heap
// allocations, in both drop and ring modes.
func TestRecordDoesNotAllocate(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   *Tracer
	}{
		{"drop", NewTracer(64)},
		{"ring", NewRingTracer(4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cycle := int64(0)
			avg := testing.AllocsPerRun(1000, func() {
				tc.tr.Record(EvExec, cycle, cycle, 1, 2, 3)
				cycle++
			})
			if avg != 0 {
				t.Fatalf("Record allocates %.2f per call, want 0", avg)
			}
		})
	}
}

func TestEventKindStringRoundTrip(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		name := k.String()
		got, ok := KindFromString(name)
		if !ok || got != k {
			t.Errorf("kind %d round-trips to (%v, %v) via %q", k, got, ok, name)
		}
	}
	if _, ok := KindFromString("nonsense"); ok {
		t.Error("KindFromString accepted an unknown name")
	}
	if EventKind(250).String() != "unknown" {
		t.Error("out-of-range kind should stringify as unknown")
	}
}
