package obs_test

// Engine-integration tests for the observability layer. They live in
// package obs_test because internal/core imports internal/obs; an
// external test package may import core without creating a cycle.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ultrascalar/internal/core"
	"ultrascalar/internal/obs"
	"ultrascalar/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.jsonl from the current engine")

// record runs w under cfg with a fresh tracer attached and returns the
// events plus the run result.
func record(t *testing.T, w workload.Workload, cfg core.Config, capacity int) ([]obs.Event, *core.Result) {
	t.Helper()
	tr := obs.NewTracer(capacity)
	cfg.Tracer = tr
	res, err := core.Run(w.Prog, w.Mem(), cfg)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	if tr.Dropped() > 0 {
		t.Fatalf("%s: tracer dropped %d events; raise capacity", w.Name, tr.Dropped())
	}
	return tr.Events(), res
}

// TestTraceDeterminism: the same workload under the same configuration
// yields a byte-identical JSONL stream, run to run, for all three
// architectures. This is the reproducibility contract ustrace relies on.
func TestTraceDeterminism(t *testing.T) {
	w := workload.RepeatedScan(16, 3)
	for _, arch := range []struct {
		name string
		g    int
	}{{"ultra1", 1}, {"hybrid", 8}, {"ultra2", 32}} {
		t.Run(arch.name, func(t *testing.T) {
			cfg := core.Config{Window: 32, Granularity: arch.g}
			man := obs.Manifest{Tool: "determinism-test", Config: arch.name}
			var b1, b2 bytes.Buffer
			ev1, _ := record(t, w, cfg, 1<<18)
			ev2, _ := record(t, w, cfg, 1<<18)
			if err := obs.WriteJSONL(&b1, man, ev1); err != nil {
				t.Fatal(err)
			}
			if err := obs.WriteJSONL(&b2, man, ev2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
				t.Fatal("same seed and config produced different JSONL traces")
			}
		})
	}
}

// TestGoldenTrace pins the exact event stream of the paper's Figure 3
// sequence on an 8-station Ultrascalar I against a checked-in fixture,
// so unintended changes to event semantics (ordering, payloads, cycle
// attribution) fail loudly. Regenerate with -update-golden after an
// intentional change.
func TestGoldenTrace(t *testing.T) {
	w := workload.Figure3Sequence()
	events, _ := record(t, w, core.Config{Window: 8, Granularity: 1}, 1<<16)
	man := obs.Manifest{Tool: "golden", Config: "arch=ultra1 n=8 workload=figure3"}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, man, events); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden.jsonl")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace deviates from the golden fixture.\ngot %d bytes, want %d. If the event schema changed intentionally, run:\n  go test ./internal/obs -run TestGoldenTrace -update-golden",
			buf.Len(), len(want))
	}
}

// TestTraceMatchesStats cross-checks the event stream against the
// engine's own aggregate counters on a branchy workload: every fetch,
// retire and squash must appear exactly once, and the forward events
// must reproduce the operand-distance histogram.
func TestTraceMatchesStats(t *testing.T) {
	for _, w := range []workload.Workload{workload.Fib(12), workload.BubbleSort(8)} {
		t.Run(w.Name, func(t *testing.T) {
			events, res := record(t, w, core.Config{Window: 16, Granularity: 1}, 1<<20)
			var fetch, retire, squash, fwd, fwdCommitted int64
			dist := make(map[int]int64)
			for _, ev := range events {
				switch ev.Kind {
				case obs.EvFetch:
					fetch++
				case obs.EvRetire:
					retire++
				case obs.EvSquash:
					squash++
				case obs.EvForward:
					fwd++
					if ev.Arg < 0 {
						fwdCommitted++
					} else {
						dist[int(ev.Arg)]++
					}
				}
			}
			s := res.Stats
			if fetch != s.Fetched {
				t.Errorf("fetch events %d != Stats.Fetched %d", fetch, s.Fetched)
			}
			if retire != s.Retired {
				t.Errorf("retire events %d != Stats.Retired %d", retire, s.Retired)
			}
			if squash != s.Squashed {
				t.Errorf("squash events %d != Stats.Squashed %d", squash, s.Squashed)
			}
			if fwdCommitted != s.OperandFromCommitted {
				t.Errorf("committed-source forwards %d != Stats.OperandFromCommitted %d",
					fwdCommitted, s.OperandFromCommitted)
			}
			for d, c := range s.OperandFromStation {
				if dist[d] != c {
					t.Errorf("distance %d: %d forward events, Stats says %d", d, dist[d], c)
				}
			}
			for d := range dist {
				if _, ok := s.OperandFromStation[d]; !ok {
					t.Errorf("forward events at distance %d missing from Stats", d)
				}
			}
		})
	}
}

// TestEngineMetricsSnapshots: the engine publishes gauge snapshots every
// MetricsEvery cycles plus one at halt, and the final snapshot agrees
// with the run's aggregate stats.
func TestEngineMetricsSnapshots(t *testing.T) {
	reg := obs.NewRegistry()
	w := workload.RepeatedScan(32, 6)
	cfg := core.Config{Window: 32, Granularity: 1, Metrics: reg, MetricsEvery: 64}
	res, err := core.Run(w.Prog, w.Mem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	snaps := reg.Snapshots()
	if len(snaps) < 3 {
		t.Fatalf("got %d snapshots over %d cycles, want several", len(snaps), res.Stats.Cycles)
	}
	for i := 0; i+1 < len(snaps)-1; i++ {
		if snaps[i+1].Tick-snaps[i].Tick != 64 {
			t.Errorf("snapshots %d..%d spaced %d cycles, want 64", i, i+1, snaps[i+1].Tick-snaps[i].Tick)
		}
	}
	last := snaps[len(snaps)-1]
	if got := last.Gauges["core.retired"]; got != float64(res.Stats.Retired) {
		t.Errorf("final core.retired = %v, want %d", got, res.Stats.Retired)
	}
	if got := last.Gauges["core.fetched"]; got != float64(res.Stats.Fetched) {
		t.Errorf("final core.fetched = %v, want %d", got, res.Stats.Fetched)
	}
	if last.Gauges["core.ipc"] <= 0 {
		t.Error("final core.ipc must be positive")
	}
}

// TestChromeExportFromEngine: a real recorded run converts to a Chrome
// trace that passes schema validation and names slices from the program.
func TestChromeExportFromEngine(t *testing.T) {
	w := workload.Fib(8)
	events, _ := record(t, w, core.Config{Window: 16, Granularity: 1}, 1<<20)
	man := obs.NewManifest("test")
	var buf bytes.Buffer
	err := obs.WriteChromeTrace(&buf, man, events, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("engine trace fails chrome validation: %v", err)
	}
	if !strings.Contains(buf.String(), `"station 0"`) {
		t.Error("trace lacks station tracks")
	}
}

// TestRingCaptureOnEngine: a small flight-recorder ring on a long run
// holds the LAST events — the tail of the run, ending in the halt's
// retirement.
func TestRingCaptureOnEngine(t *testing.T) {
	tr := obs.NewRingTracer(256)
	w := workload.RepeatedScan(32, 8)
	cfg := core.Config{Window: 32, Granularity: 1, Tracer: tr}
	res, err := core.Run(w.Prog, w.Mem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) != 256 {
		t.Fatalf("ring holds %d events, want 256", len(events))
	}
	last := events[len(events)-1]
	if last.Kind != obs.EvRetire {
		t.Fatalf("last event is %v, want the final retirement", last.Kind)
	}
	if last.Cycle != res.Stats.Cycles-1 {
		t.Fatalf("last event at cycle %d, run ended at %d", last.Cycle, res.Stats.Cycles-1)
	}
}
