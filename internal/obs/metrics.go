package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the metrics half of the observability layer: a registry
// of named counters, gauges and histograms, with periodic snapshots.
// Instruments are lock-free on the update path (atomics), so the
// parallel experiment pool can record per-task timings without
// serializing the sweep; the registry mutex covers only registration and
// snapshotting, both cold.

// Counter is a monotonically increasing int64 instrument.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value float64 instrument.
type Gauge struct{ bits atomic.Uint64 }

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last value Set.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed upper-bound buckets
// (bucket i counts observations v with v <= bounds[i]; one implicit
// +Inf bucket catches the rest).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// value materializes the histogram's current state.
func (h *Histogram) value() HistogramValue {
	hv := HistogramValue{
		Count:   h.Count(),
		Sum:     h.Sum(),
		Buckets: make([]Bucket, len(h.counts)),
	}
	for i := range h.counts {
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		hv.Buckets[i] = Bucket{Le: le, Count: h.counts[i].Load()}
	}
	return hv
}

// Bucket is one histogram bucket: the count of observations <= Le that
// fell in no earlier bucket. The last bucket's Le is +Inf (serialized as
// the JSON string "+Inf").
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// MarshalJSON serializes the bucket, mapping the +Inf bound (not
// representable in JSON numbers) to the string "+Inf".
func (b Bucket) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.Le, 1) {
		return json.Marshal(struct {
			Le    string `json:"le"`
			Count int64  `json:"count"`
		}{"+Inf", b.Count})
	}
	type noMethod Bucket
	return json.Marshal(noMethod(b))
}

// UnmarshalJSON inverts MarshalJSON, accepting both a numeric bound and
// the string "+Inf" for the final bucket.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		Le    json.RawMessage `json:"le"`
		Count int64           `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	var s string
	if err := json.Unmarshal(raw.Le, &s); err == nil {
		if s != "+Inf" {
			return fmt.Errorf("obs: bucket bound %q is neither a number nor \"+Inf\"", s)
		}
		b.Le = math.Inf(1)
		return nil
	}
	return json.Unmarshal(raw.Le, &b.Le)
}

// HistogramValue is a histogram's state at snapshot time.
type HistogramValue struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Quantile estimates the q-quantile (q in [0,1]) of the observations by
// linear interpolation within the bucket that contains the target rank.
// Ranks landing in the +Inf bucket return the last finite bound (the
// estimate cannot exceed what the histogram resolved — the Prometheus
// convention); an empty histogram returns 0.
func (hv HistogramValue) Quantile(q float64) float64 {
	if hv.Count <= 0 || len(hv.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(hv.Count)
	var cum float64
	for i, b := range hv.Buckets {
		if b.Count == 0 {
			continue
		}
		lower := 0.0
		if i > 0 {
			lower = hv.Buckets[i-1].Le
		}
		next := cum + float64(b.Count)
		if rank <= next {
			if math.IsInf(b.Le, 1) {
				return lower // the +Inf bucket has no width to interpolate in
			}
			if lower > b.Le { // degenerate (negative-bound first bucket)
				lower = b.Le
			}
			frac := (rank - cum) / float64(b.Count)
			return lower + (b.Le-lower)*frac
		}
		cum = next
	}
	// All counts consumed without reaching rank (float round-off): the
	// maximum resolvable value.
	last := hv.Buckets[len(hv.Buckets)-1]
	if math.IsInf(last.Le, 1) && len(hv.Buckets) > 1 {
		return hv.Buckets[len(hv.Buckets)-2].Le
	}
	return last.Le
}

// Snapshot is the value of every registered instrument at one tick.
// Maps serialize with sorted keys under encoding/json, so the output is
// deterministic.
type Snapshot struct {
	Tick       int64                     `json:"tick"`
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramValue `json:"histograms,omitempty"`
}

// Registry holds named instruments and the snapshot series taken from
// them. Instrument lookups get-or-create, so independent subsystems can
// share a registry without coordination; a name is bound to its first
// instrument kind (a second lookup under a different kind panics — a
// programming error, like an analogous duplicate expvar).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	snaps      []Snapshot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// checkName panics when name is already bound to another instrument
// kind. Callers hold r.mu.
func (r *Registry) checkName(name, kind string) {
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("obs: %q is already a counter", name))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("obs: %q is already a gauge", name))
	}
	if _, ok := r.histograms[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("obs: %q is already a histogram", name))
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the given upper bounds (sorted ascending; an implicit +Inf bucket is
// added). The bounds of an existing histogram are kept.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "histogram")
	h, ok := r.histograms[name]
	if !ok {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
		r.histograms[name] = h
	}
	return h
}

// Snapshot captures the current value of every instrument, appends it to
// the snapshot series, and returns it. Tick is caller-defined (the
// engine uses the simulation cycle; the benchmark harness a section
// index).
func (r *Registry) Snapshot(tick int64) Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.peekLocked(tick)
	r.snaps = append(r.snaps, s)
	return s
}

// Peek captures the current value of every instrument without appending
// to the snapshot series. Long-lived metrics endpoints use it so that
// scraping does not grow process memory.
func (r *Registry) Peek(tick int64) Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.peekLocked(tick)
}

func (r *Registry) peekLocked(tick int64) Snapshot {
	s := Snapshot{Tick: tick}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramValue, len(r.histograms))
		for n, h := range r.histograms {
			s.Histograms[n] = h.value()
		}
	}
	return s
}

// Snapshots returns the snapshot series taken so far.
func (r *Registry) Snapshots() []Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Snapshot(nil), r.snaps...)
}

// metricsDoc is the serialized form of a registry's snapshot series.
type metricsDoc struct {
	Manifest  Manifest   `json:"manifest"`
	Snapshots []Snapshot `json:"snapshots"`
}

// WriteJSON writes the snapshot series, stamped with the manifest, as an
// indented JSON document. The output is deterministic for a given series
// (instrument maps serialize with sorted keys).
func (r *Registry) WriteJSON(w io.Writer, man Manifest) error {
	doc := metricsDoc{Manifest: man, Snapshots: r.Snapshots()}
	if doc.Snapshots == nil {
		doc.Snapshots = []Snapshot{}
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding metrics: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
