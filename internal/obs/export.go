package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Exporters. Two formats:
//
//   - JSONL: one JSON object per line — a manifest record first, then
//     one record per event. Compact, streamable, byte-deterministic for
//     a given run, and the format the golden-trace tests pin.
//   - Chrome trace-event JSON: loadable in Perfetto (ui.perfetto.dev)
//     or chrome://tracing. Execution stations are tracks (tid = slot),
//     instructions are duration slices [issue, exec), squashes are
//     instant events. One simulation cycle maps to one microsecond-unit
//     tick of the trace clock.

// jsonlRecord is the wire form of one JSONL line. Type is "manifest" for
// the header line and "event" for event lines; exactly one of Manifest
// and the event fields is populated.
type jsonlRecord struct {
	Type     string    `json:"type"`
	Manifest *Manifest `json:"manifest,omitempty"`
	Kind     string    `json:"kind,omitempty"`
	Cycle    int64     `json:"cycle,omitempty"`
	Seq      int64     `json:"seq,omitempty"`
	PC       int32     `json:"pc,omitempty"`
	Slot     int32     `json:"slot,omitempty"`
	Arg      int32     `json:"arg,omitempty"`
}

// WriteJSONL writes the manifest followed by one line per event.
func WriteJSONL(w io.Writer, man Manifest, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonlRecord{Type: "manifest", Manifest: &man}); err != nil {
		return fmt.Errorf("obs: encoding manifest: %w", err)
	}
	for _, ev := range events {
		rec := jsonlRecord{
			Type: "event", Kind: ev.Kind.String(),
			Cycle: ev.Cycle, Seq: ev.Seq, PC: ev.PC, Slot: ev.Slot, Arg: ev.Arg,
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("obs: encoding event: %w", err)
		}
	}
	return bw.Flush()
}

// MaxLineBytes bounds one line of any JSONL artifact this tree reads:
// traces, metrics snapshots, campaign checkpoints, progress streams.
// bufio.Scanner's default cap is 64 KiB, which large campaign
// checkpoint records overflow — the scanner then fails with "token too
// long" and a perfectly good file becomes unreadable. 64 MiB is far
// above any record we emit while still bounding a corrupt (newline-
// free) file's memory cost.
const MaxLineBytes = 1 << 26

// NewLineScanner returns a line scanner whose buffer admits lines up to
// MaxLineBytes. Every bufio.Scanner over checkpoint/metrics/trace JSONL
// in this tree must come from here, so the line-length ceiling is one
// constant rather than a scattering of per-call-site defaults.
func NewLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), MaxLineBytes)
	return sc
}

// ReadJSONL parses a stream written by WriteJSONL. A missing manifest
// line is tolerated (the zero Manifest is returned) so hand-built event
// streams remain loadable.
func ReadJSONL(r io.Reader) (Manifest, []Event, error) {
	var man Manifest
	var events []Event
	sc := NewLineScanner(r)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec jsonlRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			return man, nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		switch rec.Type {
		case "manifest":
			if rec.Manifest != nil {
				man = *rec.Manifest
			}
		case "event":
			k, ok := KindFromString(rec.Kind)
			if !ok {
				return man, nil, fmt.Errorf("obs: line %d: unknown event kind %q", line, rec.Kind)
			}
			events = append(events, Event{
				Cycle: rec.Cycle, Seq: rec.Seq, Kind: k,
				PC: rec.PC, Slot: rec.Slot, Arg: rec.Arg,
			})
		default:
			return man, nil, fmt.Errorf("obs: line %d: unknown record type %q", line, rec.Type)
		}
	}
	if err := sc.Err(); err != nil {
		// The scanner stops mid-stream (oversized line, read error)
		// without having surfaced a line: the failure is on the line
		// after the last one it delivered.
		return man, nil, fmt.Errorf("obs: line %d: reading trace: %w", line+1, err)
	}
	return man, events, nil
}

// traceEvent is one Chrome trace-event record. Phases used: "M"
// (metadata), "X" (complete/duration), "i" (instant).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int32          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the top-level trace-event JSON object.
type chromeDoc struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
}

// instSlices pairs up per-instruction events for the slice view.
type instSlice struct {
	seq                       int64
	pc, slot                  int32
	fetch, issue, exec, retir int64 // -1 = not seen
	dists                     []int32
	squashedBy                int32 // squashing branch PC, -1 if not squashed
}

// WriteChromeTrace converts events to Chrome trace-event JSON. name
// renders an instruction for display from its PC (nil falls back to
// "pc N"). Stations appear as threads of one "ultrascalar" process,
// ordered by slot; each instruction is a complete event spanning
// [issue, exec) (fetch cycle, retire cycle and operand producer
// distances ride along in args); squashes are instant events on the
// squashed station's track.
func WriteChromeTrace(w io.Writer, man Manifest, events []Event, name func(pc int32) string) error {
	if name == nil {
		if len(man.Prog) > 0 {
			prog := man.Prog
			name = func(pc int32) string {
				if int(pc) < len(prog) && pc >= 0 {
					return prog[pc]
				}
				return fmt.Sprintf("pc %d", pc)
			}
		} else {
			name = func(pc int32) string { return fmt.Sprintf("pc %d", pc) }
		}
	}

	slices := make(map[int64]*instSlice)
	order := []int64{}
	slots := make(map[int32]bool)
	for _, ev := range events {
		slots[ev.Slot] = true
		sl := slices[ev.Seq]
		if sl == nil {
			sl = &instSlice{seq: ev.Seq, pc: ev.PC, slot: ev.Slot,
				fetch: -1, issue: -1, exec: -1, retir: -1, squashedBy: -1}
			slices[ev.Seq] = sl
			order = append(order, ev.Seq)
		}
		switch ev.Kind {
		case EvFetch:
			sl.fetch = ev.Cycle
		case EvIssue:
			sl.issue = ev.Cycle
		case EvExec:
			sl.exec = ev.Cycle
		case EvRetire:
			sl.retir = ev.Cycle
		case EvSquash:
			sl.squashedBy = ev.Arg
		case EvForward:
			sl.dists = append(sl.dists, ev.Arg)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	doc := chromeDoc{
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"manifest":   man,
			"clock_note": "1 trace tick (us) = 1 simulated cycle",
		},
		TraceEvents: []traceEvent{{
			Name: "process_name", Ph: "M", Pid: 0,
			Args: map[string]any{"name": "ultrascalar"},
		}},
	}
	sortedSlots := make([]int32, 0, len(slots))
	for s := range slots {
		sortedSlots = append(sortedSlots, s) //uslint:allow detorder -- keys are sorted on the next line; collection order cannot reach the output
	}
	sort.Slice(sortedSlots, func(i, j int) bool { return sortedSlots[i] < sortedSlots[j] })
	for _, s := range sortedSlots {
		doc.TraceEvents = append(doc.TraceEvents,
			traceEvent{Name: "thread_name", Ph: "M", Pid: 0, Tid: s,
				Args: map[string]any{"name": fmt.Sprintf("station %d", s)}},
			traceEvent{Name: "thread_sort_index", Ph: "M", Pid: 0, Tid: s,
				Args: map[string]any{"sort_index": s}})
	}

	for _, seq := range order {
		sl := slices[seq]
		start := sl.issue
		if start < 0 {
			start = sl.fetch
		}
		if start < 0 {
			continue // squash-only record of an instruction fetched pre-trace
		}
		end := sl.exec
		if end < start {
			end = start + 1
		}
		args := map[string]any{"seq": sl.seq, "pc": sl.pc}
		if sl.fetch >= 0 {
			args["fetch_cycle"] = sl.fetch
		}
		if sl.retir >= 0 {
			args["retire_cycle"] = sl.retir
		}
		if len(sl.dists) > 0 {
			args["src_dist"] = sl.dists
		}
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: name(sl.pc), Ph: "X", Ts: start, Dur: end - start,
			Pid: 0, Tid: sl.slot, Args: args,
		})
	}
	for _, ev := range events {
		switch ev.Kind {
		case EvSquash:
			doc.TraceEvents = append(doc.TraceEvents, traceEvent{
				Name: "squash", Ph: "i", Ts: ev.Cycle, Pid: 0, Tid: ev.Slot, S: "t",
				Args: map[string]any{"seq": ev.Seq, "pc": ev.PC, "by_pc": ev.Arg},
			})
		case EvFaultInject, EvFaultDetect, EvFaultRecover:
			// Fault lifecycle shows up as process-scoped instants so a
			// campaign trace makes the inject → detect → recover story
			// visible at a glance.
			doc.TraceEvents = append(doc.TraceEvents, traceEvent{
				Name: ev.Kind.String(), Ph: "i", Ts: ev.Cycle, Pid: 0, Tid: ev.Slot, S: "p",
				Args: map[string]any{"seq": ev.Seq, "pc": ev.PC, "arg": ev.Arg},
			})
		}
	}

	b, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return fmt.Errorf("obs: encoding chrome trace: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ValidateChromeTrace checks data against the trace-event format
// contract this package emits: a traceEvents array whose entries all
// have a name, a known phase, a pid/tid, non-negative timestamps on
// timed phases, and non-negative durations on complete events.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("obs: trace has no traceEvents array")
	}
	for i, ev := range doc.TraceEvents {
		var ph, name string
		if err := requireString(ev, "ph", &ph); err != nil {
			return fmt.Errorf("obs: traceEvents[%d]: %w", i, err)
		}
		if err := requireString(ev, "name", &name); err != nil {
			return fmt.Errorf("obs: traceEvents[%d]: %w", i, err)
		}
		switch ph {
		case "M":
			// metadata carries no timestamp
		case "X", "i":
			var ts float64
			if err := requireNumber(ev, "ts", &ts); err != nil {
				return fmt.Errorf("obs: traceEvents[%d] (%s): %w", i, name, err)
			}
			if ts < 0 {
				return fmt.Errorf("obs: traceEvents[%d] (%s): negative ts %v", i, name, ts)
			}
			if ph == "X" {
				var dur float64
				if raw, ok := ev["dur"]; ok {
					if err := json.Unmarshal(raw, &dur); err != nil || dur < 0 {
						return fmt.Errorf("obs: traceEvents[%d] (%s): bad dur %s", i, name, raw)
					}
				}
			}
		default:
			return fmt.Errorf("obs: traceEvents[%d] (%s): unsupported phase %q", i, name, ph)
		}
		if _, ok := ev["pid"]; !ok {
			return fmt.Errorf("obs: traceEvents[%d] (%s): missing pid", i, name)
		}
		if _, ok := ev["tid"]; !ok && ph != "M" {
			return fmt.Errorf("obs: traceEvents[%d] (%s): missing tid", i, name)
		}
	}
	return nil
}

func requireString(ev map[string]json.RawMessage, key string, dst *string) error {
	raw, ok := ev[key]
	if !ok {
		return fmt.Errorf("missing %q", key)
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		return fmt.Errorf("%q is not a string: %w", key, err)
	}
	return nil
}

func requireNumber(ev map[string]json.RawMessage, key string, dst *float64) error {
	raw, ok := ev[key]
	if !ok {
		return fmt.Errorf("missing %q", key)
	}
	if err := json.Unmarshal(raw, dst); err != nil || math.IsNaN(*dst) {
		return fmt.Errorf("%q is not a number", key)
	}
	return nil
}
