package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition. The registry keeps one flat namespace of
// dotted names; labeled series are encoded into the name with the
// convention "base{key=value,key2=value2}" (LabeledName builds one,
// SplitLabeledName parses one back). WritePrometheus renders a Peek
// snapshot into the Prometheus text format (version 0.0.4): names are
// sanitized (dots and other illegal characters become underscores),
// histogram buckets turn cumulative with the canonical
// _bucket{le=...}/_sum/_count triple, and families are emitted in
// sorted order so the exposition is deterministic for a given snapshot.
// ValidatePrometheus is the matching checker the smoke tests and usstat
// run against a scraped exposition.

// Label is one key=value pair of a labeled instrument name.
type Label struct {
	Key   string
	Value string
}

// LabeledName encodes a base name plus labels as "base{k=v,...}".
// Labels are kept in argument order; values must not contain '}' or ','
// (instrument names are code-authored, not user input).
func LabeledName(base string, labels ...Label) string {
	if len(labels) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// SplitLabeledName inverts LabeledName. Names without a '{' come back
// with nil labels; a malformed tail is treated as part of the base.
func SplitLabeledName(name string) (string, []Label) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, nil
	}
	base := name[:i]
	inner := name[i+1 : len(name)-1]
	if inner == "" {
		return base, nil
	}
	parts := strings.Split(inner, ",")
	labels := make([]Label, 0, len(parts))
	for _, p := range parts {
		k, v, _ := strings.Cut(p, "=")
		labels = append(labels, Label{Key: k, Value: v})
	}
	return base, labels
}

// promName sanitizes a base name into the Prometheus metric-name
// alphabet [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(base string) string {
	var b strings.Builder
	b.Grow(len(base))
	for i := 0; i < len(base); i++ {
		c := base[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabelName sanitizes a label key into [a-zA-Z_][a-zA-Z0-9_]*.
func promLabelName(key string) string {
	s := promName(key)
	return strings.ReplaceAll(s, ":", "_")
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// promLabels renders a label set as {k="v",...}, or "" when empty.
func promLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promLabelName(l.Key))
		b.WriteString(`="`)
		b.WriteString(promEscape(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promFloat renders a sample value. Prometheus accepts Go's 'g' format;
// infinities spell +Inf/-Inf.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promSample is one rendered exposition line.
type promSample struct {
	name  string // full sample name (family name or family_bucket etc.)
	label string // rendered label set, "" for none
	value string
}

// promFamily is one metric family: a TYPE header plus its samples.
type promFamily struct {
	name    string
	kind    string
	samples []promSample
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format. Output is deterministic: families sort by name,
// samples within a family by source instrument name.
func WritePrometheus(w io.Writer, s Snapshot) error {
	fams := map[string]*promFamily{}
	family := func(base, kind string) *promFamily {
		f := fams[base]
		if f == nil {
			f = &promFamily{name: base, kind: kind}
			fams[base] = f
		}
		return f
	}

	counterNames := sortedKeys(s.Counters)
	for _, name := range counterNames {
		base, labels := SplitLabeledName(name)
		f := family(promName(base), "counter")
		f.samples = append(f.samples, promSample{
			name:  f.name,
			label: promLabels(labels),
			value: strconv.FormatInt(s.Counters[name], 10),
		})
	}
	for _, name := range sortedKeys(s.Gauges) {
		base, labels := SplitLabeledName(name)
		f := family(promName(base), "gauge")
		f.samples = append(f.samples, promSample{
			name:  f.name,
			label: promLabels(labels),
			value: promFloat(s.Gauges[name]),
		})
	}
	for _, name := range sortedKeys(s.Histograms) {
		base, labels := SplitLabeledName(name)
		f := family(promName(base), "histogram")
		hv := s.Histograms[name]
		var cum int64
		for _, b := range hv.Buckets {
			cum += b.Count
			le := append(append([]Label{}, labels...), Label{Key: "le", Value: promFloat(b.Le)})
			f.samples = append(f.samples, promSample{
				name:  f.name + "_bucket",
				label: promLabels(le),
				value: strconv.FormatInt(cum, 10),
			})
		}
		f.samples = append(f.samples,
			promSample{name: f.name + "_sum", label: promLabels(labels), value: promFloat(hv.Sum)},
			promSample{name: f.name + "_count", label: promLabels(labels), value: strconv.FormatInt(hv.Count, 10)})
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n) //uslint:allow detorder -- keys are sorted on the next line; collection order cannot reach the output
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		f := fams[n]
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, smp := range f.samples {
			b.WriteString(smp.name)
			b.WriteString(smp.label)
			b.WriteByte(' ')
			b.WriteString(smp.value)
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k) //uslint:allow detorder -- keys are sorted on the next line; collection order cannot reach the output
	}
	sort.Strings(out)
	return out
}

// ValidatePrometheus checks data against the exposition contract
// WritePrometheus emits: every sample line parses (name, optional
// label set, float value), every sample belongs to a family declared by
// a preceding # TYPE line of a known kind, no family is declared
// twice, and histogram families expose only the _bucket/_sum/_count
// suffixes. It returns the first violation with its line number.
func ValidatePrometheus(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("obs: empty prometheus exposition")
	}
	types := map[string]string{}
	lines := strings.Split(string(data), "\n")
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	} else {
		return fmt.Errorf("obs: prometheus exposition missing trailing newline")
	}
	for i, line := range lines {
		no := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "HELP" {
				continue
			}
			if len(fields) != 4 || fields[1] != "TYPE" {
				return fmt.Errorf("obs: prom line %d: malformed comment %q", no, line)
			}
			name, kind := fields[2], fields[3]
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("obs: prom line %d: unknown type %q", no, kind)
			}
			if _, dup := types[name]; dup {
				return fmt.Errorf("obs: prom line %d: duplicate TYPE for %q", no, name)
			}
			types[name] = kind
			continue
		}
		name, rest, err := splitPromSample(line)
		if err != nil {
			return fmt.Errorf("obs: prom line %d: %w", no, err)
		}
		if !validPromName(name) {
			return fmt.Errorf("obs: prom line %d: invalid metric name %q", no, name)
		}
		if _, err := strconv.ParseFloat(rest, 64); err != nil {
			return fmt.Errorf("obs: prom line %d: bad value %q", no, rest)
		}
		fam, suffix := name, ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, s) {
				if _, ok := types[strings.TrimSuffix(name, s)]; ok {
					fam, suffix = strings.TrimSuffix(name, s), s
					break
				}
			}
		}
		kind, ok := types[fam]
		if !ok {
			return fmt.Errorf("obs: prom line %d: sample %q has no TYPE declaration", no, name)
		}
		if suffix != "" && kind != "histogram" && kind != "summary" {
			return fmt.Errorf("obs: prom line %d: suffix %q on %s family %q", no, suffix, kind, fam)
		}
		if kind == "histogram" && suffix == "" {
			return fmt.Errorf("obs: prom line %d: bare sample %q on histogram family", no, name)
		}
	}
	if len(types) == 0 {
		return fmt.Errorf("obs: prometheus exposition declares no metric families")
	}
	return nil
}

// splitPromSample splits one sample line into its metric name and value
// text, consuming an optional {label="value",...} block (quote- and
// escape-aware).
func splitPromSample(line string) (name, value string, err error) {
	brace := strings.IndexByte(line, '{')
	space := strings.IndexByte(line, ' ')
	if brace < 0 || (space >= 0 && space < brace) {
		if space < 0 {
			return "", "", fmt.Errorf("no value on sample line %q", line)
		}
		return line[:space], strings.TrimSpace(line[space+1:]), nil
	}
	name = line[:brace]
	inQuote, esc := false, false
	for i := brace + 1; i < len(line); i++ {
		c := line[i]
		switch {
		case esc:
			esc = false
		case inQuote && c == '\\':
			esc = true
		case c == '"':
			inQuote = !inQuote
		case c == '}' && !inQuote:
			return name, strings.TrimSpace(line[i+1:]), nil
		}
	}
	return "", "", fmt.Errorf("unterminated label set in %q", line)
}

// validPromName reports whether s is a legal Prometheus metric name.
func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
