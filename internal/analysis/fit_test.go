package analysis

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFitPowerExact(t *testing.T) {
	// y = 3·x^1.5 exactly.
	var xs, ys []float64
	for _, x := range []float64{1, 2, 4, 8, 16, 32} {
		xs = append(xs, x)
		ys = append(ys, 3*math.Pow(x, 1.5))
	}
	f, err := FitPower(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Exponent-1.5) > 1e-9 || math.Abs(f.Coeff-3) > 1e-9 {
		t.Errorf("fit %+v, want p=1.5 c=3", f)
	}
	if f.R2 < 0.999999 {
		t.Errorf("R2 = %f for exact data", f.R2)
	}
}

func TestFitPowerNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var xs, ys []float64
	for x := 4.0; x <= 4096; x *= 2 {
		xs = append(xs, x)
		ys = append(ys, 7*math.Pow(x, 0.5)*(1+0.05*rng.Float64()))
	}
	f, err := FitPower(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Exponent-0.5) > 0.05 {
		t.Errorf("exponent %f, want about 0.5", f.Exponent)
	}
}

// TestFitPowerQuick: for random positive power laws, the fit recovers the
// exponent.
func TestFitPowerQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := rng.Float64()*3 - 1 // exponent in [-1, 2]
		c := rng.Float64()*9 + 1
		var xs, ys []float64
		for x := 2.0; x <= 1024; x *= 2 {
			xs = append(xs, x)
			ys = append(ys, c*math.Pow(x, p))
		}
		fit, err := FitPower(xs, ys)
		return err == nil && math.Abs(fit.Exponent-p) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFitPowerErrors(t *testing.T) {
	if _, err := FitPower([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should fail")
	}
	if _, err := FitPower([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := FitPower([]float64{1, -2}, []float64{1, 1}); err == nil {
		t.Error("negative x should fail")
	}
	if _, err := FitPower([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("degenerate x should fail")
	}
	if _, err := FitPower([]float64{1, 2}, []float64{0, 1}); err == nil {
		t.Error("zero y should fail")
	}
}

func TestTable(t *testing.T) {
	tab := NewTable("arch", "n", "area")
	tab.Row("ultra1", 64, 3.14159)
	tab.Row("hybrid", 128, "1.2e9")
	s := tab.String()
	if !strings.Contains(s, "arch") || !strings.Contains(s, "ultra1") {
		t.Errorf("table missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Errorf("table has %d lines:\n%s", len(lines), s)
	}
	if !strings.Contains(s, "3.142") {
		t.Errorf("float formatting wrong:\n%s", s)
	}
	// Columns align: header and first row start identically padded.
	if len(lines[0]) == 0 || len(lines[2]) == 0 {
		t.Error("empty lines")
	}
}
