// Package analysis provides the statistical and reporting machinery for
// the paper's evaluation: power-law exponent fitting on log-log data (to
// compare measured scaling against the paper's Θ bounds) and aligned text
// tables in the style of the paper's Figure 11.
package analysis

import (
	"fmt"
	"math"
	"strings"
)

// PowerFit is the result of fitting y = c·x^p by least squares in log-log
// space.
type PowerFit struct {
	Exponent float64 // p
	Coeff    float64 // c
	R2       float64 // goodness of fit in log space
}

// FitPower fits y = c·x^p. All values must be positive; at least two
// points are required.
func FitPower(xs, ys []float64) (PowerFit, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return PowerFit{}, fmt.Errorf("analysis: need >= 2 paired points, got %d/%d", len(xs), len(ys))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return PowerFit{}, fmt.Errorf("analysis: non-positive data point (%g, %g)", xs[i], ys[i])
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return PowerFit{}, fmt.Errorf("analysis: degenerate x values")
	}
	p := (n*sxy - sx*sy) / den
	b := (sy - p*sx) / n
	// R² in log space.
	meanY := sy / n
	var ssTot, ssRes float64
	for i := range lx {
		pred := b + p*lx[i]
		ssRes += (ly[i] - pred) * (ly[i] - pred)
		ssTot += (ly[i] - meanY) * (ly[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return PowerFit{Exponent: p, Coeff: math.Exp(b), R2: r2}, nil
}

// Table renders aligned text tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; values are formatted with %v, floats with 4
// significant digits.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(width) {
				b.WriteString(strings.Repeat(" ", width[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	line(t.header)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
