// Package cspp implements cyclic segmented parallel prefix (CSPP)
// computations, the communication primitive at the heart of all three
// Ultrascalar processors (paper Section 2 and Henry & Kuszmaul,
// "Cyclic Segmented Parallel Prefix", Ultrascalar Memo 1).
//
// A segmented parallel prefix computes, for each position, the accumulated
// result of an associative operator applied over all preceding positions up
// to and including the nearest position whose segment bit is high. The
// cyclic variant ties the ends together: positions with no preceding
// segment bit wrap around to the most recent segment at the other end of
// the array. The Ultrascalar guarantees at least one segment bit is always
// high (the oldest station raises it), so the wrap is well defined.
//
// Two evaluation strategies are provided with identical semantics:
//
//   - Ring: the linear O(n) scan corresponding to the multiplexer-ring
//     datapath of the paper's Figure 1.
//   - Tree: the divide-and-conquer evaluation corresponding to the
//     parallel-prefix tree datapath of the paper's Figure 4, mirroring the
//     structure of the O(log n) gate-delay circuit.
//
// Property tests assert Ring == Tree; the circuit package builds the same
// computation as a gate netlist and is tested against this package.
//
// The fault model (internal/fault) targets this primitive directly: a
// merge-bit fault corrupts one CSPP merge node's output for a logical
// register, so every station latching that register in the same cycle
// receives the corrupted value — the shared-subtree failure mode the
// tree evaluation implies — while drop-forward and dup-forward faults
// model a segment bit failing open or a stale merge output winning the
// wired-OR. The engine injects these at its own forwarding scan (the
// operational equivalent of the CSPP), keeping this package purely
// functional.
package cspp

// Op is an associative operator with identity. Identity must satisfy
// Combine(Identity(), x) == x for all x used.
type Op[T any] interface {
	Combine(a, b T) T
	Identity() T
}

// Elem is one input position of a segmented prefix: a segment bit and a
// value. When Seg is high, accumulation restarts at Val.
type Elem[T any] struct {
	Seg bool
	Val T
}

// RingExclusive computes the cyclic segmented prefix by walking the ring,
// exactly as the multiplexer-ring datapath of Figure 1 would settle. The
// output at position i accumulates items j strictly before i in cyclic
// order, back to (and including) the nearest j with Seg high. If no segment
// bit is set anywhere, the result is the identity everywhere (the hardware
// precludes this case: the oldest station always segments).
//
// "Strictly before" gives the exclusive scan the datapath needs: a station
// sees the register values produced by its predecessors, not its own.
func RingExclusive[T any](items []Elem[T], op Op[T]) []T {
	n := len(items)
	out := make([]T, n)
	if n == 0 {
		return out
	}
	// Find the last segment position; accumulation flows from there.
	last := -1
	for i := n - 1; i >= 0; i-- {
		if items[i].Seg {
			last = i
			break
		}
	}
	if last == -1 {
		for i := range out {
			out[i] = op.Identity()
		}
		return out
	}
	// Walk the ring starting at the last segment position, carrying the
	// accumulated value; each position first reads the accumulator (its
	// exclusive result) conceptually, but since we start *at* a segment,
	// we prime the accumulator with that element and emit to successors.
	acc := items[last].Val
	for k := 1; k <= n; k++ {
		i := (last + k) % n // on the final step i == last: full wrap
		out[i] = acc
		if items[i].Seg {
			acc = items[i].Val
		} else {
			acc = op.Combine(acc, items[i].Val)
		}
	}
	return out
}

// TreeExclusive computes the same function as RingExclusive using the
// divide-and-conquer structure of the parallel-prefix tree (Figure 4): an
// up-sweep combining block summaries and a down-sweep distributing
// prefixes, then a final wrap fix-up using the whole-array summary. Its
// recursion depth is ceil(log2 n), matching the circuit's gate depth.
func TreeExclusive[T any](items []Elem[T], op Op[T]) []T {
	n := len(items)
	out := make([]T, n)
	if n == 0 {
		return out
	}
	incl, covered, total := scanTree(items, op)
	// Exclusive shift: position i uses the inclusive result of i-1.
	// Wrap: if nothing before i is covered, use the whole-array summary
	// (value since the last segment through the end) combined with the raw
	// prefix of [0..i-1] — which, uncovered, is exactly incl[i-1].
	if !total.covered {
		// No segment anywhere: the cyclic exclusive scan is the identity
		// everywhere (the datapath precludes this case).
		for i := range out {
			out[i] = op.Identity()
		}
		return out
	}
	for i := 0; i < n; i++ {
		var ev T
		var ec bool
		if i == 0 {
			ev, ec = op.Identity(), false
		} else {
			ev, ec = incl[i-1], covered[i-1]
		}
		if ec {
			out[i] = ev
		} else {
			out[i] = op.Combine(total.val, ev)
		}
	}
	return out
}

// summary describes a block: val is the accumulated value since the last
// segment in the block (or since the block start if no segment), covered
// reports whether the block contains a segment.
type summary[T any] struct {
	val     T
	covered bool
}

// scanTree returns the inclusive segmented scan, per-position covered
// flags, and the whole-block summary, via balanced recursion.
func scanTree[T any](items []Elem[T], op Op[T]) (incl []T, covered []bool, total summary[T]) {
	n := len(items)
	incl = make([]T, n)
	covered = make([]bool, n)
	total = scanRec(items, incl, covered, op)
	return incl, covered, total
}

func scanRec[T any](items []Elem[T], incl []T, covered []bool, op Op[T]) summary[T] {
	n := len(items)
	if n == 1 {
		if items[0].Seg {
			incl[0] = items[0].Val
			covered[0] = true
			return summary[T]{val: items[0].Val, covered: true}
		}
		incl[0] = op.Combine(op.Identity(), items[0].Val)
		covered[0] = false
		return summary[T]{val: incl[0], covered: false}
	}
	half := n / 2
	left := scanRec(items[:half], incl[:half], covered[:half], op)
	right := scanRec(items[half:], incl[half:], covered[half:], op)
	// Fix up the right half: positions not covered within the right block
	// continue accumulation from the left block's tail value.
	for i := half; i < n; i++ {
		if !covered[i] {
			incl[i] = op.Combine(left.val, incl[i])
			covered[i] = left.covered
		}
	}
	if right.covered {
		return summary[T]{val: right.val, covered: true}
	}
	return summary[T]{val: op.Combine(left.val, right.val), covered: left.covered}
}
