package cspp

// PassOp is the paper's register-forwarding operator a⊗b = a: it "simply
// passes earlier values" so the segmented prefix delivers, at each station,
// the value inserted by the nearest preceding station whose segment
// (modified) bit is high.
type PassOp[T any] struct{ Zero T }

// Combine returns a, the accumulated (earlier) value.
func (PassOp[T]) Combine(a, _ T) T { return a }

// Identity returns the zero value; it is only observed when no segment bit
// is set anywhere, which the datapath precludes.
func (p PassOp[T]) Identity() T { return p.Zero }

// AndOp is the 1-bit operator a⊗b = a∧b of the paper's Figure 5, used to
// ask "have all earlier stations met a condition?"
type AndOp struct{}

// Combine ANDs the accumulated condition with the next station's bit.
func (AndOp) Combine(a, b bool) bool { return a && b }

// Identity is true, the AND identity.
func (AndOp) Identity() bool { return true }

// RegBinding is the payload carried by one register's CSPP tree: the
// register's current value and its ready bit (paper Figure 1: "Register
// Value and Ready Bit").
type RegBinding struct {
	Val   uint32
	Ready bool
}

// ForwardRegister computes, for every station, the incoming (value, ready)
// pair of one logical register: the pair inserted by the nearest preceding
// station (cyclically) whose modified bit is set. The oldest station must
// have its modified bit set (it inserts the committed register file), which
// the datapath guarantees; ForwardRegister enforces it.
func ForwardRegister(bindings []RegBinding, modified []bool, oldest int) []RegBinding {
	n := len(bindings)
	items := make([]Elem[RegBinding], n)
	for i := 0; i < n; i++ {
		items[i] = Elem[RegBinding]{Seg: modified[i] || i == oldest, Val: bindings[i]}
	}
	return RingExclusive[RegBinding](items, PassOp[RegBinding]{})
}

// AllEarlierTrue computes, for every station, whether all stations from the
// oldest up to (but excluding) it have met a condition — the three
// sequencing uses in the paper: instruction completion (oldest/deallocate),
// store serialization, load serialization, and branch commitment. The
// oldest station itself has no earlier stations, so its output is true.
func AllEarlierTrue(met []bool, oldest int) []bool {
	n := len(met)
	items := make([]Elem[bool], n)
	for i := 0; i < n; i++ {
		items[i] = Elem[bool]{Seg: i == oldest, Val: met[i]}
	}
	out := RingExclusive[bool](items, AndOp{})
	if n > 0 {
		out[oldest] = true
	}
	return out
}
