package cspp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// sumOp is an ordinary associative operator used to exercise the generic
// scan with a non-idempotent operation.
type sumOp struct{}

func (sumOp) Combine(a, b int) int { return a + b }
func (sumOp) Identity() int        { return 0 }

// naiveCyclicExclusive is an O(n^2) oracle: for each i walk backwards
// cyclically accumulating until a segment is consumed.
func naiveCyclicExclusive[T any](items []Elem[T], op Op[T]) []T {
	n := len(items)
	out := make([]T, n)
	for i := range items {
		// Collect items going backwards from i-1 until (and including) the
		// first segmented one.
		var chain []T
		found := false
		for k := 1; k <= n; k++ {
			j := ((i-k)%n + n) % n
			chain = append(chain, items[j].Val)
			if items[j].Seg {
				found = true
				break
			}
		}
		if !found {
			out[i] = op.Identity()
			continue
		}
		// chain is backwards; fold from the segment forward.
		acc := chain[len(chain)-1]
		for k := len(chain) - 2; k >= 0; k-- {
			acc = op.Combine(acc, chain[k])
		}
		out[i] = acc
	}
	return out
}

func randomItems(rng *rand.Rand, n int, segProb float64) []Elem[int] {
	items := make([]Elem[int], n)
	for i := range items {
		items[i] = Elem[int]{Seg: rng.Float64() < segProb, Val: rng.Intn(100)}
	}
	return items
}

func TestRingMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(33)
		items := randomItems(rng, n, 0.3)
		got := RingExclusive[int](items, sumOp{})
		want := naiveCyclicExclusive[int](items, sumOp{})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d n=%d pos %d: ring %v, naive %v\nitems %v",
					trial, n, i, got, want, items)
			}
		}
	}
}

func TestTreeMatchesRing(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(65)
		items := randomItems(rng, n, 0.25)
		ring := RingExclusive[int](items, sumOp{})
		tree := TreeExclusive[int](items, sumOp{})
		for i := range ring {
			if ring[i] != tree[i] {
				t.Fatalf("trial %d n=%d pos %d: ring %v tree %v\nitems %v",
					trial, n, i, ring, tree, items)
			}
		}
	}
}

// TestTreeMatchesRingQuick drives the equivalence with testing/quick over
// the AND operator (the Figure 5 circuit).
func TestTreeMatchesRingQuick(t *testing.T) {
	f := func(segs []bool, vals []bool, seed int64) bool {
		n := len(segs)
		if len(vals) < n {
			n = len(vals)
		}
		if n == 0 {
			return true
		}
		items := make([]Elem[bool], n)
		for i := 0; i < n; i++ {
			items[i] = Elem[bool]{Seg: segs[i], Val: vals[i]}
		}
		ring := RingExclusive[bool](items, AndOp{})
		tree := TreeExclusive[bool](items, AndOp{})
		for i := range ring {
			if ring[i] != tree[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNoSegments(t *testing.T) {
	items := []Elem[int]{{Val: 1}, {Val: 2}, {Val: 3}}
	for _, out := range [][]int{
		RingExclusive[int](items, sumOp{}),
		TreeExclusive[int](items, sumOp{}),
	} {
		for i, v := range out {
			if v != 0 {
				t.Errorf("pos %d = %d, want identity 0", i, v)
			}
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if out := RingExclusive[int](nil, sumOp{}); len(out) != 0 {
		t.Error("empty ring")
	}
	if out := TreeExclusive[int](nil, sumOp{}); len(out) != 0 {
		t.Error("empty tree")
	}
	// Single segmented element wraps to itself.
	one := []Elem[int]{{Seg: true, Val: 42}}
	if out := RingExclusive[int](one, sumOp{}); out[0] != 42 {
		t.Errorf("single seg ring = %v", out)
	}
	if out := TreeExclusive[int](one, sumOp{}); out[0] != 42 {
		t.Errorf("single seg tree = %v", out)
	}
}

// TestFigure5 reproduces the paper's Figure 5 example exactly: Station 6 is
// oldest (segment high); stations 6,7,0,1,3 have raised their condition
// inputs; the circuit outputs high to stations 7,0,1,2.
func TestFigure5(t *testing.T) {
	met := make([]bool, 8)
	for _, s := range []int{6, 7, 0, 1, 3} {
		met[s] = true
	}
	out := AllEarlierTrue(met, 6)
	wantHigh := map[int]bool{7: true, 0: true, 1: true, 2: true, 6: true} // oldest trivially true
	for s := 0; s < 8; s++ {
		if out[s] != wantHigh[s] {
			t.Errorf("station %d: got %v, want %v (out=%v)", s, out[s], wantHigh[s], out)
		}
	}
}

// TestForwardRegisterFigure1 reproduces the R0 ring snapshot of Figure 1:
// Station 6 (oldest) inserts the committed value 10 (ready); Station 7
// modifies R0 but is not finished (ready=false); Station 4 has computed 42
// (ready). Stations 0-4 must see Station 7's unready insertion; stations 5
// and 6 must see 42 from Station 4; station 7 sees the committed 10.
func TestForwardRegisterFigure1(t *testing.T) {
	n := 8
	bindings := make([]RegBinding, n)
	modified := make([]bool, n)
	bindings[6] = RegBinding{Val: 10, Ready: true} // oldest inserts initial value
	modified[6] = true
	bindings[7] = RegBinding{Val: 0, Ready: false} // writer, not yet computed
	modified[7] = true
	bindings[4] = RegBinding{Val: 42, Ready: true} // writer, computed
	modified[4] = true
	out := ForwardRegister(bindings, modified, 6)

	for _, s := range []int{0, 1, 2, 3, 4} {
		if out[s].Ready || out[s] != (RegBinding{Val: 0, Ready: false}) {
			t.Errorf("station %d sees %+v, want not-ready from station 7", s, out[s])
		}
	}
	for _, s := range []int{5, 6} {
		if out[s] != (RegBinding{Val: 42, Ready: true}) {
			t.Errorf("station %d sees %+v, want {42 true} from station 4", s, out[s])
		}
	}
	if out[7] != (RegBinding{Val: 10, Ready: true}) {
		t.Errorf("station 7 sees %+v, want committed {10 true}", out[7])
	}
}

// TestForwardRegisterOldestForced verifies the oldest station is treated as
// a modifier even if the caller forgets to set its modified bit.
func TestForwardRegisterOldestForced(t *testing.T) {
	bindings := []RegBinding{{Val: 5, Ready: true}, {}, {}}
	out := ForwardRegister(bindings, []bool{false, false, false}, 0)
	if out[1] != (RegBinding{Val: 5, Ready: true}) || out[2] != out[1] {
		t.Errorf("out = %+v", out)
	}
}

func TestAllEarlierTrueChain(t *testing.T) {
	// All met: everyone sees true.
	out := AllEarlierTrue([]bool{true, true, true, true}, 2)
	for i, v := range out {
		if !v {
			t.Errorf("station %d false, want true (%v)", i, out)
		}
	}
	// Oldest not met: everyone except oldest sees false.
	out = AllEarlierTrue([]bool{true, true, false, true}, 2)
	want := []bool{false, false, true, false}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out = %v, want %v", out, want)
			break
		}
	}
}

func BenchmarkRingExclusive1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	items := randomItems(rng, 1024, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RingExclusive[int](items, sumOp{})
	}
}

func BenchmarkTreeExclusive1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	items := randomItems(rng, 1024, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TreeExclusive[int](items, sumOp{})
	}
}
