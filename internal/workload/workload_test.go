package workload

import (
	"testing"

	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/ref"
)

func runRef(t *testing.T, w Workload) *ref.Result {
	t.Helper()
	res, err := ref.Run(w.Prog, w.Mem(), ref.Config{})
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return res
}

func TestFib(t *testing.T) {
	res := runRef(t, Fib(20))
	// fib with fib(0)=1 convention after k decrements: sequence 1,1,2,...
	// Fib(20) leaves the 21st Fibonacci number (1-indexed from 1) in r3.
	want := []isa.Word{1, 1}
	for len(want) <= 21 {
		want = append(want, want[len(want)-1]+want[len(want)-2])
	}
	if res.Regs[3] != want[20] {
		t.Errorf("fib r3 = %d, want %d", res.Regs[3], want[20])
	}
}

func TestVecSum(t *testing.T) {
	res := runRef(t, VecSum(50))
	if res.Regs[3] != 50*51/2 {
		t.Errorf("vecsum = %d, want %d", res.Regs[3], 50*51/2)
	}
}

func TestDotProduct(t *testing.T) {
	res := runRef(t, DotProduct(30))
	var want isa.Word
	for i := 0; i < 30; i++ {
		want += isa.Word((i + 1) * (2*i + 1))
	}
	if res.Regs[3] != want {
		t.Errorf("dotprod = %d, want %d", res.Regs[3], want)
	}
}

func TestMatMul(t *testing.T) {
	k := 4
	res := runRef(t, MatMul(k))
	a := func(i, j int) int { return (i*k+j)%7 + 1 }
	b := func(i, j int) int { return (i*k+j)%5 + 1 }
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			want := 0
			for kk := 0; kk < k; kk++ {
				want += a(i, kk) * b(kk, j)
			}
			got := res.Mem.Load(isa.Word(5000 + i*k + j))
			if got != isa.Word(want) {
				t.Errorf("c[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestBubbleSort(t *testing.T) {
	k := 12
	res := runRef(t, BubbleSort(k))
	prev := isa.Word(0)
	for i := 0; i < k; i++ {
		v := res.Mem.Load(isa.Word(1000 + i))
		if v < prev {
			t.Fatalf("not sorted at %d: %d < %d", i, v, prev)
		}
		prev = v
	}
	// Same multiset: compare sums.
	var gotSum, wantSum isa.Word
	for i := 0; i < k; i++ {
		gotSum += res.Mem.Load(isa.Word(1000 + i))
		wantSum += isa.Word((i*37 + 11) % 97)
	}
	if gotSum != wantSum {
		t.Errorf("element sum changed: %d != %d", gotSum, wantSum)
	}
}

func TestGCD(t *testing.T) {
	res := runRef(t, GCD(1071, 462))
	if res.Regs[1] != 21 {
		t.Errorf("gcd = %d, want 21", res.Regs[1])
	}
}

func TestMemCopy(t *testing.T) {
	k := 40
	res := runRef(t, MemCopy(k))
	for i := 0; i < k; i++ {
		if got := res.Mem.Load(isa.Word(4000 + i)); got != isa.Word(i*i+3) {
			t.Errorf("copy[%d] = %d, want %d", i, got, i*i+3)
		}
	}
}

func TestRepeatedScan(t *testing.T) {
	res := runRef(t, RepeatedScan(16, 5))
	want := isa.Word(5 * 16 * 17 / 2)
	if res.Regs[5] != want {
		t.Errorf("rescan sum = %d, want %d", res.Regs[5], want)
	}
	if res.Loads != 5*16 {
		t.Errorf("loads = %d, want %d", res.Loads, 5*16)
	}
}

func TestJumpyLoop(t *testing.T) {
	res := runRef(t, JumpyLoop(10))
	// Six adds per iteration on distinct registers; r1 counts to zero.
	if res.Regs[1] != 0 {
		t.Errorf("counter = %d, want 0", res.Regs[1])
	}
	if res.Executed < 10*8 {
		t.Errorf("executed %d, want at least 80", res.Executed)
	}
}

func TestCollatz(t *testing.T) {
	res := runRef(t, Collatz(27))
	if res.Regs[2] != 111 { // well-known: 27 reaches 1 in 111 steps
		t.Errorf("collatz(27) steps = %d, want 111", res.Regs[2])
	}
}

func TestFigure3Sequence(t *testing.T) {
	w := Figure3Sequence()
	if len(w.Prog) != 9 { // 8 instructions + halt
		t.Fatalf("figure3 has %d instructions", len(w.Prog))
	}
	if w.Prog[0].Op != isa.OpDiv || w.Prog[4].Op != isa.OpMul {
		t.Error("figure3 sequence mismatched")
	}
}

func TestChainSerial(t *testing.T) {
	res := runRef(t, Chain(100))
	if res.Regs[1] != 101 {
		t.Errorf("chain r1 = %d, want 101", res.Regs[1])
	}
}

func TestParallelIndependent(t *testing.T) {
	w := Parallel(64, 32)
	// No instruction (other than the implicit fetch order) depends on any
	// other: all sources are absent (LI reads nothing).
	for _, in := range w.Prog {
		if len(in.Reads()) != 0 {
			t.Fatalf("parallel workload has a reading instruction: %v", in)
		}
	}
	runRef(t, w)
}

func TestMixedILPRespectsDistance(t *testing.T) {
	w := MixedILP(200, 16, 4, 42)
	res := runRef(t, w)
	if res.Executed != len(w.Prog) {
		t.Errorf("executed %d, want %d (straight line)", res.Executed, len(w.Prog))
	}
	// Determinism: same seed, same program.
	w2 := MixedILP(200, 16, 4, 42)
	for i := range w.Prog {
		if w.Prog[i] != w2.Prog[i] {
			t.Fatal("MixedILP not deterministic for equal seeds")
		}
	}
	w3 := MixedILP(200, 16, 4, 43)
	same := true
	for i := range w.Prog {
		if w.Prog[i] != w3.Prog[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestMemStream(t *testing.T) {
	res := runRef(t, MemStream(20))
	if res.Loads != 20 || res.Stores != 20 {
		t.Errorf("loads %d stores %d, want 20/20", res.Loads, res.Stores)
	}
	if res.Mem.Load(1005) != 7 {
		t.Errorf("mem[1005] = %d, want 7", res.Mem.Load(1005))
	}
}

func TestLoadBurst(t *testing.T) {
	w := LoadBurst(30, 32)
	res := runRef(t, w)
	if res.Loads != 30 {
		t.Errorf("loads = %d, want 30", res.Loads)
	}
}

func TestBranchy(t *testing.T) {
	p := runRef(t, Branchy(50, true))
	r := runRef(t, Branchy(50, false))
	if p.Branches < 50 || r.Branches < 50 {
		t.Errorf("branch counts %d/%d too low", p.Branches, r.Branches)
	}
	// The accumulator counts 1 per odd parity, 2 per even parity over 50
	// iterations; both must halt with a plausible total.
	if p.Regs[3] < 50 || p.Regs[3] > 100 {
		t.Errorf("predictable branchy r3 = %d out of range", p.Regs[3])
	}
}

func TestKernelsSuiteRuns(t *testing.T) {
	for _, w := range Kernels() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			res := runRef(t, w)
			if res.Executed == 0 {
				t.Error("no instructions executed")
			}
			if w.Description == "" {
				t.Error("missing description")
			}
		})
	}
}

func TestWorkloadMemDefault(t *testing.T) {
	w := Workload{Name: "x"}
	if w.Mem() == nil || w.Mem().Len() != 0 {
		t.Error("default memory should be empty, non-nil")
	}
	// Mem returns fresh copies.
	v := VecSum(3)
	m1, m2 := v.Mem(), v.Mem()
	m1.Store(1000, 99)
	if m2.Load(1000) == 99 {
		t.Error("Mem must return independent copies")
	}
	_ = memory.NewFlat()
}
