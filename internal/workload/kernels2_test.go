package workload

import (
	"math/bits"
	"testing"

	"ultrascalar/internal/core"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/ref"
)

// coreRun executes a workload on the engine and returns its cycle count.
func coreRun(w Workload, window int) (int64, error) {
	res, err := core.Run(w.Prog, w.Mem(), core.Config{Window: window, Granularity: 1})
	if err != nil {
		return 0, err
	}
	return res.Stats.Cycles, nil
}

func TestBinarySearchFinds(t *testing.T) {
	// Array holds 3i+1; search for i=41's value.
	res := runRef(t, BinarySearch(64, 3*41+1))
	if res.Regs[10] != 41 {
		t.Errorf("found index %d, want 41", int32(res.Regs[10]))
	}
}

func TestBinarySearchMisses(t *testing.T) {
	res := runRef(t, BinarySearch(64, 2)) // 2 is not of the form 3i+1
	if int32(res.Regs[10]) != -1 {
		t.Errorf("found index %d, want -1", int32(res.Regs[10]))
	}
}

func TestChecksum(t *testing.T) {
	res := runRef(t, Checksum(40))
	var want isa.Word
	for i := 0; i < 40; i++ {
		want = bits.RotateLeft32(want, 1) ^ isa.Word(i*2654435761)
	}
	if res.Regs[3] != want {
		t.Errorf("checksum %#x, want %#x", res.Regs[3], want)
	}
}

func TestReverse(t *testing.T) {
	k := 25
	res := runRef(t, Reverse(k))
	for i := 0; i < k; i++ {
		if got := res.Mem.Load(isa.Word(1000 + i)); got != isa.Word(k-i) {
			t.Errorf("a[%d] = %d, want %d", i, got, k-i)
		}
	}
}

func TestSieve(t *testing.T) {
	res := runRef(t, Sieve(60))
	// Primes <= 60: 2,3,5,7,11,13,17,19,23,29,31,37,41,43,47,53,59 = 17.
	if res.Regs[10] != 17 {
		t.Errorf("primes = %d, want 17", res.Regs[10])
	}
}

func TestPopCountLoop(t *testing.T) {
	res := runRef(t, PopCountLoop(12))
	want := 0
	for i := 0; i < 12; i++ {
		want += bits.OnesCount32(uint32(i*0x9E3779B9 + 7))
	}
	if res.Regs[3] != isa.Word(want) {
		t.Errorf("popcount %d, want %d", res.Regs[3], want)
	}
}

func TestQuickSort(t *testing.T) {
	k := 24
	res := runRef(t, QuickSort(k))
	prev := isa.Word(0)
	var gotSum, wantSum isa.Word
	for i := 0; i < k; i++ {
		v := res.Mem.Load(isa.Word(1000 + i))
		if v < prev {
			t.Fatalf("not sorted at %d: %d < %d", i, v, prev)
		}
		prev = v
		gotSum += v
		wantSum += isa.Word((i*131 + 37) % 251)
	}
	if gotSum != wantSum {
		t.Errorf("element sum changed: %d != %d", gotSum, wantSum)
	}
}

func TestHanoi(t *testing.T) {
	res := runRef(t, Hanoi(7))
	if res.Regs[10] != 127 { // 2^7 - 1
		t.Errorf("hanoi moves = %d, want 127", res.Regs[10])
	}
}

func TestPointerChase(t *testing.T) {
	k := 32
	res := runRef(t, PointerChase(k, 5))
	if res.Regs[3] != isa.Word(k*(k+1)/2) {
		t.Errorf("chase sum = %d, want %d", res.Regs[3], k*(k+1)/2)
	}
	if res.Loads != 2*k {
		t.Errorf("loads = %d, want %d", res.Loads, 2*k)
	}
}

// TestPointerChaseLatencyBound: a big window barely helps the chase — the
// serial address chain bounds throughput.
func TestPointerChaseLatencyBound(t *testing.T) {
	w := PointerChase(64, 7)
	small, err := ref.Run(w.Prog, w.Mem(), ref.Config{})
	if err != nil {
		t.Fatal(err)
	}
	_ = small
	cyc := func(n int) int64 {
		res, err := coreRun(w, n)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Once the window holds a whole iteration, growing it buys nothing:
	// the serial next-pointer chain (64 loads x 2-cycle latency) is the
	// bound.
	c16, c64 := cyc(16), cyc(64)
	if float64(c64) < 0.95*float64(c16) {
		t.Errorf("window 64 (%d cycles) should not beat window 16 (%d) on a chase", c64, c16)
	}
	if c64 < 2*64 {
		t.Errorf("cycles %d below the serial latency bound %d", c64, 2*64)
	}
}

func TestExtendedKernelsRun(t *testing.T) {
	ws := ExtendedKernels()
	if len(ws) < 14 {
		t.Fatalf("extended suite has %d workloads", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if seen[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
		res := runRef(t, w)
		if res.Executed == 0 {
			t.Errorf("%s executed nothing", w.Name)
		}
	}
}
