// Package workload provides programs for evaluating the Ultrascalar
// processors: hand-written assembly kernels with known results, and
// synthetic instruction-stream generators with controlled instruction-level
// parallelism, memory intensity, and branch behaviour.
package workload

import (
	"fmt"

	"ultrascalar/internal/asm"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
)

// Workload is a runnable program plus its initial data memory.
type Workload struct {
	Name        string
	Description string
	Prog        []isa.Inst
	// InitMem returns a fresh copy of the initial data memory.
	InitMem func() *memory.Flat
}

// Mem returns the initial memory (an empty one when InitMem is nil).
func (w Workload) Mem() *memory.Flat {
	if w.InitMem == nil {
		return memory.NewFlat()
	}
	return w.InitMem()
}

func kernel(name, desc, src string) Workload {
	return Workload{Name: name, Description: desc, Prog: asm.MustAssemble(src).Insts}
}

// Fib computes fib(k) iteratively into r3.
func Fib(k int) Workload {
	return kernel("fib", fmt.Sprintf("iterative fibonacci(%d)", k), fmt.Sprintf(`
		li r1, %d     ; counter
		li r2, 0      ; fib(i-1)
		li r3, 1      ; fib(i)
		beq r1, r0, done
	loop:
		add r4, r2, r3
		mov r2, r3
		mov r3, r4
		addi r1, r1, -1
		bne r1, r0, loop
	done:
		halt
	`, k))
}

// VecSum sums k words starting at address base into r3.
func VecSum(k int) Workload {
	w := kernel("vecsum", fmt.Sprintf("sum of %d-element vector", k), fmt.Sprintf(`
		li r1, 1000   ; base
		li r2, %d     ; count
		li r3, 0      ; sum
	loop:
		lw r4, (r1)
		add r3, r3, r4
		addi r1, r1, 1
		addi r2, r2, -1
		bne r2, r0, loop
		halt
	`, k))
	w.InitMem = func() *memory.Flat {
		m := memory.NewFlat()
		for i := 0; i < k; i++ {
			m.Store(isa.Word(1000+i), isa.Word(i+1))
		}
		return m
	}
	return w
}

// DotProduct computes the dot product of two k-element vectors into r3.
func DotProduct(k int) Workload {
	w := kernel("dotprod", fmt.Sprintf("dot product of %d-element vectors", k), fmt.Sprintf(`
		li r1, 1000   ; base a
		li r2, 2000   ; base b
		li r5, %d     ; count
		li r3, 0      ; acc
	loop:
		lw r6, (r1)
		lw r7, (r2)
		mul r8, r6, r7
		add r3, r3, r8
		addi r1, r1, 1
		addi r2, r2, 1
		addi r5, r5, -1
		bne r5, r0, loop
		halt
	`, k))
	w.InitMem = func() *memory.Flat {
		m := memory.NewFlat()
		for i := 0; i < k; i++ {
			m.Store(isa.Word(1000+i), isa.Word(i+1))
			m.Store(isa.Word(2000+i), isa.Word(2*i+1))
		}
		return m
	}
	return w
}

// MatMul multiplies two k×k matrices (row major at 1000 and 3000) into
// 5000, with the classic triple loop.
func MatMul(k int) Workload {
	w := kernel("matmul", fmt.Sprintf("%dx%d matrix multiply", k, k), fmt.Sprintf(`
		li r10, %d    ; k
		li r1, 0      ; i
	iloop:
		li r2, 0      ; j
	jloop:
		li r3, 0      ; kk
		li r4, 0      ; acc
	kloop:
		; a[i][kk] = mem[1000 + i*k + kk]
		mul r5, r1, r10
		add r5, r5, r3
		addi r5, r5, 0
		li r6, 1000
		add r5, r5, r6
		lw r7, (r5)
		; b[kk][j] = mem[3000 + kk*k + j]
		mul r5, r3, r10
		add r5, r5, r2
		li r6, 3000
		add r5, r5, r6
		lw r8, (r5)
		mul r9, r7, r8
		add r4, r4, r9
		addi r3, r3, 1
		bne r3, r10, kloop
		; c[i][j] = mem[5000 + i*k + j]
		mul r5, r1, r10
		add r5, r5, r2
		li r6, 5000
		add r5, r5, r6
		sw r4, (r5)
		addi r2, r2, 1
		bne r2, r10, jloop
		addi r1, r1, 1
		bne r1, r10, iloop
		halt
	`, k))
	w.InitMem = func() *memory.Flat {
		m := memory.NewFlat()
		for i := 0; i < k*k; i++ {
			m.Store(isa.Word(1000+i), isa.Word(i%7+1))
			m.Store(isa.Word(3000+i), isa.Word(i%5+1))
		}
		return m
	}
	return w
}

// BubbleSort sorts k words at 1000 ascending.
func BubbleSort(k int) Workload {
	w := kernel("sort", fmt.Sprintf("bubble sort of %d elements", k), fmt.Sprintf(`
		li r10, %d      ; k
		addi r9, r10, -1 ; outer = k-1
	outer:
		li r1, 0        ; i
		li r8, 1000
	inner:
		lw r2, (r8)
		lw r3, 1(r8)
		bge r3, r2, noswap
		sw r3, (r8)
		sw r2, 1(r8)
	noswap:
		addi r8, r8, 1
		addi r1, r1, 1
		bne r1, r9, inner
		addi r9, r9, -1
		bne r9, r0, outer
		halt
	`, k))
	w.InitMem = func() *memory.Flat {
		m := memory.NewFlat()
		for i := 0; i < k; i++ {
			m.Store(isa.Word(1000+i), isa.Word((i*37+11)%97))
		}
		return m
	}
	return w
}

// GCD computes gcd(a, b) by repeated remainder into r1.
func GCD(a, b int) Workload {
	return kernel("gcd", fmt.Sprintf("gcd(%d,%d) by Euclid", a, b), fmt.Sprintf(`
		li r1, %d
		li r2, %d
	loop:
		beq r2, r0, done
		rem r3, r1, r2
		mov r1, r2
		mov r2, r3
		j loop
	done:
		halt
	`, a, b))
}

// MemCopy copies k words from 1000 to 4000.
func MemCopy(k int) Workload {
	w := kernel("memcpy", fmt.Sprintf("copy %d words", k), fmt.Sprintf(`
		li r1, 1000
		li r2, 4000
		li r3, %d
	loop:
		lw r4, (r1)
		sw r4, (r2)
		addi r1, r1, 1
		addi r2, r2, 1
		addi r3, r3, -1
		bne r3, r0, loop
		halt
	`, k))
	w.InitMem = func() *memory.Flat {
		m := memory.NewFlat()
		for i := 0; i < k; i++ {
			m.Store(isa.Word(1000+i), isa.Word(i*i+3))
		}
		return m
	}
	return w
}

// RepeatedScan sums the same k-word vector `passes` times — a workload
// with temporal reuse, for the distributed cluster-cache experiment
// (paper Section 7).
func RepeatedScan(k, passes int) Workload {
	w := kernel("rescan", fmt.Sprintf("%d passes over a %d-word vector", passes, k), fmt.Sprintf(`
		li r1, %d     ; passes
		li r5, 0      ; sum
	outer:
		li r2, 1000   ; base
		li r3, %d     ; count
	inner:
		lw r4, (r2)
		add r5, r5, r4
		addi r2, r2, 1
		addi r3, r3, -1
		bne r3, r0, inner
		addi r1, r1, -1
		bne r1, r0, outer
		halt
	`, passes, k))
	w.InitMem = func() *memory.Flat {
		m := memory.NewFlat()
		for i := 0; i < k; i++ {
			m.Store(isa.Word(1000+i), isa.Word(i+1))
		}
		return m
	}
	return w
}

// Collatz counts steps of the Collatz iteration from seed into r2.
func Collatz(seed int) Workload {
	return kernel("collatz", fmt.Sprintf("collatz steps from %d", seed), fmt.Sprintf(`
		li r1, %d
		li r2, 0     ; steps
		li r5, 1
		li r6, 2
		li r7, 3
	loop:
		beq r1, r5, done
		rem r3, r1, r6
		beq r3, r0, even
		mul r1, r1, r7
		addi r1, r1, 1
		j next
	even:
		div r1, r1, r6
	next:
		addi r2, r2, 1
		j loop
	done:
		halt
	`, seed))
}

// Figure3Sequence is the paper's eight-instruction example from Figures 1
// and 3 (station 6 holds the first instruction in program order). Initial
// register values are materialized by a prologue of LI instructions; the
// simulators also accept a pre-set window for the exact Figure 3 timing
// reproduction (see internal/core).
func Figure3Sequence() Workload {
	return kernel("figure3", "the paper's Figure 1/3 instruction sequence", `
		div r3, r1, r2
		add r0, r0, r3
		add r1, r5, r6
		add r1, r0, r1
		mul r2, r5, r6
		add r2, r2, r4
		sub r0, r5, r6
		add r4, r0, r7
		halt
	`)
}

// Kernels returns the standard kernel suite at moderate sizes, used by the
// cross-validation tests and the IPC experiments.
func Kernels() []Workload {
	return []Workload{
		Fib(20),
		VecSum(50),
		DotProduct(30),
		MatMul(4),
		BubbleSort(12),
		GCD(1071, 462),
		MemCopy(40),
		Collatz(27),
	}
}
