package workload

import (
	"reflect"
	"testing"
)

// TestMixedILPGolden pins one generated trace byte-for-byte. The seeded
// generators feed the reproducibility harness (usrepro), so a silent
// change in the sequence — a reordered rng draw, a different generator —
// must fail a test, not shift every published IPC number.
func TestMixedILPGolden(t *testing.T) {
	want := []string{
		"li r1, 1",
		"li r2, 2",
		"li r3, 3",
		"mul r3, r3, r1",
		"sub r2, r2, r3",
		"xor r2, r3, r2",
		"or r2, r2, r3",
		"xor r3, r2, r2",
		"and r1, r2, r2",
		"halt",
	}
	prog := MixedILP(6, 4, 3, 42).Prog
	if len(prog) != len(want) {
		t.Fatalf("MixedILP(6, 4, 3, 42): %d instructions, want %d", len(prog), len(want))
	}
	for i, in := range prog {
		if in.String() != want[i] {
			t.Errorf("instruction %d = %q, want %q", i, in.String(), want[i])
		}
	}
}

// TestMixedILPSeedDeterminism: same seed, same program; different seed,
// different program.
func TestMixedILPSeedDeterminism(t *testing.T) {
	a := MixedILP(50, 8, 4, 7)
	b := MixedILP(50, 8, 4, 7)
	if !reflect.DeepEqual(a.Prog, b.Prog) {
		t.Fatal("same seed produced different programs")
	}
	c := MixedILP(50, 8, 4, 8)
	if reflect.DeepEqual(a.Prog, c.Prog) {
		t.Fatal("different seeds produced identical programs; rng is not wired to the seed")
	}
}

// TestPointerChaseSeedDeterminism pins the list shuffle: the program and
// the initial memory image must both follow the seed.
func TestPointerChaseSeedDeterminism(t *testing.T) {
	const k = 32
	a := PointerChase(k, 7)
	b := PointerChase(k, 7)
	if !reflect.DeepEqual(a.Prog, b.Prog) {
		t.Fatal("same seed produced different programs")
	}
	ma, mb := a.InitMem(), b.InitMem()
	const base = 1000
	for addr := base; addr < base+2*k; addr++ {
		if va, vb := ma.Load(uint32(addr)), mb.Load(uint32(addr)); va != vb {
			t.Fatalf("same seed, memory differs at %d: %d vs %d", addr, va, vb)
		}
	}
	c := PointerChase(k, 8)
	mc := c.InitMem()
	same := true
	for addr := base; addr < base+2*k; addr++ {
		if ma.Load(uint32(addr)) != mc.Load(uint32(addr)) {
			same = false
			break
		}
	}
	if same && reflect.DeepEqual(a.Prog, c.Prog) {
		t.Fatal("different seeds produced identical lists")
	}
}
