package workload

import (
	"fmt"

	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
)

// Additional kernels broadening the evaluation suite: search, checksums,
// array manipulation and a sieve, covering pointer-chasing, data-
// dependent branching and mixed integer work.

// BinarySearch searches a sorted k-word array at 1000 for target,
// leaving the index in r10 (or -1).
func BinarySearch(k, target int) Workload {
	w := kernel("bsearch", fmt.Sprintf("binary search of %d elements", k), fmt.Sprintf(`
		li r1, 0       ; lo
		li r2, %d      ; hi (exclusive)
		li r3, %d      ; target
		li r10, -1     ; result
		li r9, 1000    ; base
		li r8, 2
	loop:
		bge r1, r2, done
		add r4, r1, r2
		div r4, r4, r8 ; mid
		add r5, r9, r4
		lw r6, (r5)
		beq r6, r3, found
		blt r6, r3, right
		mov r2, r4     ; hi = mid
		j loop
	right:
		addi r1, r4, 1 ; lo = mid+1
		j loop
	found:
		mov r10, r4
	done:
		halt
	`, k, target))
	w.InitMem = func() *memory.Flat {
		m := memory.NewFlat()
		for i := 0; i < k; i++ {
			m.Store(isa.Word(1000+i), isa.Word(3*i+1))
		}
		return m
	}
	return w
}

// Checksum computes a rotating-XOR checksum over k words into r3.
func Checksum(k int) Workload {
	w := kernel("checksum", fmt.Sprintf("rotate-xor checksum of %d words", k), fmt.Sprintf(`
		li r1, 1000
		li r2, %d
		li r3, 0
		li r6, 1
		li r7, 31
	loop:
		lw r4, (r1)
		; r3 = rotl(r3, 1) ^ r4
		sll r5, r3, r6
		srl r8, r3, r7
		or r3, r5, r8
		xor r3, r3, r4
		addi r1, r1, 1
		addi r2, r2, -1
		bne r2, r0, loop
		halt
	`, k))
	w.InitMem = func() *memory.Flat {
		m := memory.NewFlat()
		for i := 0; i < k; i++ {
			m.Store(isa.Word(1000+i), isa.Word(i*2654435761))
		}
		return m
	}
	return w
}

// Reverse reverses a k-word array at 1000 in place.
func Reverse(k int) Workload {
	w := kernel("reverse", fmt.Sprintf("reverse %d words in place", k), fmt.Sprintf(`
		li r1, 1000        ; left
		li r2, %d          ; right
	loop:
		bge r1, r2, done
		lw r3, (r1)
		lw r4, (r2)
		sw r4, (r1)
		sw r3, (r2)
		addi r1, r1, 1
		addi r2, r2, -1
		j loop
	done:
		halt
	`, 1000+k-1))
	w.InitMem = func() *memory.Flat {
		m := memory.NewFlat()
		for i := 0; i < k; i++ {
			m.Store(isa.Word(1000+i), isa.Word(i+1))
		}
		return m
	}
	return w
}

// Sieve marks composites up to k (memory at 2000+i holds 1 if composite)
// and counts primes >= 2 into r10.
func Sieve(k int) Workload {
	return kernel("sieve", fmt.Sprintf("prime sieve up to %d", k), fmt.Sprintf(`
		li r9, %d
		li r1, 2        ; i
	outer:
		mul r2, r1, r1
		blt r9, r2, count
		li r3, 2000
		add r3, r3, r1
		lw r4, (r3)
		bne r4, r0, next ; already composite
		; mark multiples i*i, i*i+i, ...
		mov r5, r2      ; m = i*i
	mark:
		blt r9, r5, next
		li r6, 2000
		add r6, r6, r5
		li r7, 1
		sw r7, (r6)
		add r5, r5, r1
		j mark
	next:
		addi r1, r1, 1
		j outer
	count:
		li r10, 0
		li r1, 2
	cloop:
		blt r9, r1, done
		li r3, 2000
		add r3, r3, r1
		lw r4, (r3)
		bne r4, r0, cnext
		addi r10, r10, 1
	cnext:
		addi r1, r1, 1
		j cloop
	done:
		halt
	`, k))
}

// PopCountLoop counts the set bits of k words into r3 (software popcount,
// heavy on data-dependent branches).
func PopCountLoop(k int) Workload {
	w := kernel("popcount", fmt.Sprintf("software popcount of %d words", k), fmt.Sprintf(`
		li r1, 1000
		li r2, %d
		li r3, 0
		li r7, 1
	loop:
		lw r4, (r1)
	bits:
		beq r4, r0, nextw
		and r5, r4, r7
		add r3, r3, r5
		srl r4, r4, r7
		j bits
	nextw:
		addi r1, r1, 1
		addi r2, r2, -1
		bne r2, r0, loop
		halt
	`, k))
	w.InitMem = func() *memory.Flat {
		m := memory.NewFlat()
		for i := 0; i < k; i++ {
			m.Store(isa.Word(1000+i), isa.Word(i*0x9E3779B9+7))
		}
		return m
	}
	return w
}

// QuickSort sorts k words at 1000 with genuinely recursive quicksort:
// a software call stack at 8000 (stack pointer r29), call/ret through
// r31, Lomuto partition. It stresses JAL/JALR, the return-target BTB and
// deep speculation.
func QuickSort(k int) Workload {
	w := kernel("quicksort", fmt.Sprintf("recursive quicksort of %d elements", k), fmt.Sprintf(`
		li r29, 8000        ; stack pointer (grows up)
		li r1, 1000         ; lo
		li r2, %d           ; hi (inclusive)
		call qsort
		halt

	; qsort(lo=r1, hi=r2), clobbers r3-r10
	qsort:
		bge r1, r2, qret    ; size <= 1
		; save lo, hi, return address
		sw r1, 0(r29)
		sw r2, 1(r29)
		sw r31, 2(r29)
		addi r29, r29, 3
		; partition: pivot = a[hi]; i = lo-1
		lw r3, (r2)         ; pivot
		addi r4, r1, -1     ; i
		mov r5, r1          ; j
	ploop:
		bge r5, r2, pdone   ; j < hi
		lw r6, (r5)
		bgt r6, r3, pskip   ; a[j] <= pivot?
		inc r4
		lw r7, (r4)
		sw r6, (r4)
		sw r7, (r5)
	pskip:
		inc r5
		j ploop
	pdone:
		inc r4              ; pivot position p
		lw r7, (r4)
		sw r3, (r4)
		sw r7, (r2)
		; left recursion: qsort(lo, p-1); push p first (frame is now
		; [lo hi ra p], sp = base+4)
		sw r4, 0(r29)
		addi r29, r29, 1
		addi r2, r4, -1
		call qsort
		; pop p, reload hi from the frame, recurse right: qsort(p+1, hi)
		addi r29, r29, -1
		lw r4, 0(r29)       ; p   (base+3)
		lw r2, -2(r29)      ; hi  (base+1)
		addi r1, r4, 1
		call qsort
		; epilogue: restore ra, lo, hi and pop the frame
		addi r29, r29, -3
		lw r31, 2(r29)
		lw r1, 0(r29)
		lw r2, 1(r29)
	qret:
		ret
	`, 1000+k-1))
	w.InitMem = func() *memory.Flat {
		m := memory.NewFlat()
		for i := 0; i < k; i++ {
			m.Store(isa.Word(1000+i), isa.Word((i*131+37)%251))
		}
		return m
	}
	return w
}

// Hanoi counts the moves of an n-disk Towers of Hanoi solved recursively
// (call stack at 8000, counter in r10): 2^n - 1 moves.
func Hanoi(n int) Workload {
	return kernel("hanoi", fmt.Sprintf("towers of hanoi, %d disks", n), fmt.Sprintf(`
		li r29, 8000
		li r1, %d       ; disks
		li r10, 0       ; moves
		call hanoi
		halt
	; hanoi(n=r1): if n == 0 return; hanoi(n-1); move++; hanoi(n-1)
	hanoi:
		beq r1, r0, hret
		sw r1, 0(r29)
		sw r31, 1(r29)
		addi r29, r29, 2
		addi r1, r1, -1
		call hanoi
		inc r10
		lw r1, -2(r29)  ; reload n
		addi r1, r1, -1
		call hanoi
		addi r29, r29, -2
		lw r31, 1(r29)
		lw r1, 0(r29)
	hret:
		ret
	`, n))
}

// ExtendedKernels returns the broadened suite: the standard kernels plus
// the search/checksum/array workloads.
func ExtendedKernels() []Workload {
	return append(Kernels(),
		BinarySearch(64, 3*41+1),
		Checksum(40),
		Reverse(25),
		Sieve(60),
		PopCountLoop(12),
		RepeatedScan(16, 6),
		JumpyLoop(30),
		QuickSort(24),
		Hanoi(7),
		PointerChase(32, 5),
	)
}
