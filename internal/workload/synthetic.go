package workload

import (
	"fmt"
	"math/rand"

	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
)

// Synthetic instruction-stream generators. These produce straight-line
// programs (terminated by HALT) whose dependence structure is controlled,
// for the ILP and self-timed-locality experiments (paper Section 7).

// Chain generates a serial dependence chain of length k: every instruction
// consumes the previous one's result, so ILP is 1 regardless of window
// size.
func Chain(k int) Workload {
	prog := []isa.Inst{{Op: isa.OpLi, Rd: 1, Imm: 1}}
	for i := 0; i < k; i++ {
		prog = append(prog, isa.Inst{Op: isa.OpAddi, Rd: 1, Rs1: 1, Imm: 1})
	}
	prog = append(prog, isa.Inst{Op: isa.OpHalt})
	return Workload{
		Name:        "chain",
		Description: fmt.Sprintf("serial dependence chain of %d adds", k),
		Prog:        prog,
	}
}

// Parallel generates k mutually independent instructions spread over nregs
// registers: ILP is limited only by the window.
func Parallel(k, nregs int) Workload {
	prog := make([]isa.Inst, 0, k+2)
	for i := 0; i < k; i++ {
		rd := uint8(1 + i%(nregs-1))
		prog = append(prog, isa.Inst{Op: isa.OpLi, Rd: rd, Imm: int32(i)})
	}
	prog = append(prog, isa.Inst{Op: isa.OpHalt})
	return Workload{
		Name:        "parallel",
		Description: fmt.Sprintf("%d independent instructions", k),
		Prog:        prog,
	}
}

// MixedILP generates k instructions where each reads registers written a
// bounded distance back, yielding a tunable dependence structure: distance
// 1 approximates Chain, large distances approximate Parallel.
func MixedILP(k, nregs, maxDist int, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	prog := make([]isa.Inst, 0, k+nregs+1)
	for r := 1; r < nregs; r++ {
		prog = append(prog, isa.Inst{Op: isa.OpLi, Rd: uint8(r), Imm: int32(r)})
	}
	// writer[r] is the index of the last instruction writing r.
	ops := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpXor, isa.OpOr, isa.OpAnd, isa.OpMul}
	for i := 0; i < k; i++ {
		idx := len(prog)
		// Choose sources among registers written within maxDist.
		lo := idx - maxDist
		if lo < 0 {
			lo = 0
		}
		pick := func() uint8 {
			j := lo + rng.Intn(idx-lo)
			if d, ok := prog[j].Writes(); ok && d != 0 {
				return d
			}
			return uint8(1 + rng.Intn(nregs-1))
		}
		prog = append(prog, isa.Inst{
			Op:  ops[rng.Intn(len(ops))],
			Rd:  uint8(1 + rng.Intn(nregs-1)),
			Rs1: pick(),
			Rs2: pick(),
		})
	}
	prog = append(prog, isa.Inst{Op: isa.OpHalt})
	return Workload{
		Name:        "mixed-ilp",
		Description: fmt.Sprintf("%d instructions, dependence distance <= %d", k, maxDist),
		Prog:        prog,
	}
}

// MemStream generates k alternating store/load pairs over a linear address
// stream: one memory operation per two instructions, exercising the
// fat-tree and the load/store serialization CSPPs.
func MemStream(k int) Workload {
	prog := []isa.Inst{
		{Op: isa.OpLi, Rd: 1, Imm: 1000}, // base
		{Op: isa.OpLi, Rd: 2, Imm: 7},    // value
	}
	for i := 0; i < k; i++ {
		prog = append(prog,
			isa.Inst{Op: isa.OpSw, Rs1: 1, Rs2: 2, Imm: int32(i)},
			isa.Inst{Op: isa.OpLw, Rd: 3, Rs1: 1, Imm: int32(i)},
		)
	}
	prog = append(prog, isa.Inst{Op: isa.OpHalt})
	return Workload{
		Name:        "memstream",
		Description: fmt.Sprintf("%d store/load pairs over a linear stream", k),
		Prog:        prog,
	}
}

// LoadBurst generates k independent loads from consecutive addresses: the
// pure bandwidth workload for the M(n) experiments (every instruction is a
// memory operation).
func LoadBurst(k, nregs int) Workload {
	prog := []isa.Inst{{Op: isa.OpLi, Rd: 1, Imm: 1000}}
	for i := 0; i < k; i++ {
		rd := uint8(2 + i%(nregs-2))
		prog = append(prog, isa.Inst{Op: isa.OpLw, Rd: rd, Rs1: 1, Imm: int32(i)})
	}
	prog = append(prog, isa.Inst{Op: isa.OpHalt})
	w := Workload{
		Name:        "loadburst",
		Description: fmt.Sprintf("%d independent loads", k),
		Prog:        prog,
	}
	return w
}

// JumpyLoop generates a counted loop whose body is split by always-taken
// forward jumps. Execution can sustain one iteration per cycle, but a
// conventional block fetcher needs one cycle per taken transfer — three
// per iteration — so fetch bandwidth, not ILP, becomes the bottleneck.
// This is the workload shape that motivates the trace cache the paper
// cites for feeding a wide window.
func JumpyLoop(iters int) Workload {
	return kernel("jumpy", fmt.Sprintf("%d iterations split by taken jumps", iters),
		fmt.Sprintf(`
		li r1, %d
	loop:
		add r2, r2, r3
		add r4, r4, r5
		j b1
		nop           ; skipped: makes the jump a real taken transfer
		nop
	b1:
		add r6, r6, r7
		add r8, r8, r9
		j b2
		nop
		nop
	b2:
		add r10, r10, r11
		addi r1, r1, -1
		bne r1, r0, loop
		halt
	`, iters))
}

// PointerChase builds a shuffled singly-linked list of k nodes and walks
// it, summing payloads into r3. Every load's address depends on the
// previous load — the latency-bound workload where no amount of window,
// bandwidth or renaming helps, only memory latency.
func PointerChase(k int, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(k)
	// node i lives at base + 2*perm[i]: [next, payload].
	const base = 1000
	w := kernel("ptrchase", fmt.Sprintf("walk a %d-node shuffled linked list", k), fmt.Sprintf(`
		li r1, %d      ; current node address
		li r2, %d      ; count
		li r3, 0       ; sum
	loop:
		lw r4, 1(r1)   ; payload
		add r3, r3, r4
		lw r1, 0(r1)   ; next
		addi r2, r2, -1
		bne r2, r0, loop
		halt
	`, base+2*perm[0], k))
	w.InitMem = func() *memory.Flat {
		m := memory.NewFlat()
		for i := 0; i < k; i++ {
			addr := isa.Word(base + 2*perm[i])
			next := isa.Word(base + 2*perm[(i+1)%k])
			m.Store(addr, next)
			m.Store(addr+1, isa.Word(i+1))
		}
		return m
	}
	return w
}

// Branchy generates a loop whose body branches on a data-dependent
// condition; predictable selects a fixed pattern (period two) versus a
// pseudo-random one.
func Branchy(iters int, predictable bool) Workload {
	// r1 counts down; r2 alternates (predictable) or follows a linear
	// congruential sequence (unpredictable); r3 accumulates.
	cond := "rem r4, r2, r6" // r4 = r2 % 2
	step := "addi r2, r2, 1"
	if !predictable {
		step = "mul r2, r2, r7\naddi r2, r2, 12345\n" // LCG-ish
	}
	src := fmt.Sprintf(`
		li r1, %d
		li r2, 1
		li r3, 0
		li r6, 2
		li32 r7, 1103515245
	loop:
		%s
		%s
		beq r4, r0, even
		addi r3, r3, 1
		j next
	even:
		addi r3, r3, 2
	next:
		addi r1, r1, -1
		bne r1, r0, loop
		halt
	`, iters, step, cond)
	name := "branchy-predictable"
	if !predictable {
		name = "branchy-random"
	}
	return kernel(name, fmt.Sprintf("%d data-dependent branches", iters), src)
}
