package ultrascalar

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestQuickstart(t *testing.T) {
	prog, err := Assemble(`
		li r1, 6
		li r2, 7
		mul r3, r1, r2
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range []Arch{UltraI, UltraII, Hybrid} {
		p, err := New(arch, 8)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(prog.Insts, NewMemory())
		if err != nil {
			t.Fatal(err)
		}
		if res.Regs[3] != 42 {
			t.Errorf("%s: r3 = %d, want 42", arch, res.Regs[3])
		}
	}
}

func TestArchNames(t *testing.T) {
	if UltraI.String() == "" || UltraII.String() == "" || Hybrid.String() == "" {
		t.Error("arch names empty")
	}
	if !strings.Contains(Arch(99).String(), "99") {
		t.Error("unknown arch should render its number")
	}
}

func TestClusterSizes(t *testing.T) {
	p1, _ := New(UltraI, 64)
	p2, _ := New(UltraII, 64)
	ph, _ := New(Hybrid, 64, WithClusterSize(16))
	if p1.ClusterSize() != 1 || p2.ClusterSize() != 64 || ph.ClusterSize() != 16 {
		t.Errorf("cluster sizes %d/%d/%d", p1.ClusterSize(), p2.ClusterSize(), ph.ClusterSize())
	}
	// Default hybrid cluster is min(L, n) — the paper's C = L.
	phd, _ := New(Hybrid, 64)
	if phd.ClusterSize() != 32 {
		t.Errorf("default cluster %d, want 32", phd.ClusterSize())
	}
	small, _ := New(Hybrid, 8)
	if small.ClusterSize() != 8 {
		t.Errorf("default cluster for n=8 is %d, want 8", small.ClusterSize())
	}
}

func TestOptions(t *testing.T) {
	prog, _ := Assemble("lw r1, 0(r0)\nhalt")
	mem := NewMemory()
	mem.Store(0, 99)
	p, err := New(UltraI, 16,
		WithRegisters(16),
		WithRegisterWidth(16),
		WithBandwidth(ConstBandwidth(2)),
		WithMemoryTiming(),
		WithPredictor(GShare(8, 4)),
		WithLatencies(DefaultLatencies()),
		WithTimeline(),
		WithMaxCycles(100000),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(prog.Insts, mem)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[1] != 99 {
		t.Errorf("r1 = %d, want 99", res.Regs[1])
	}
	if len(res.Timeline) == 0 {
		t.Error("timeline requested but empty")
	}
}

func TestOptionErrors(t *testing.T) {
	if _, err := New(UltraI, 0); err == nil {
		t.Error("window 0 should fail")
	}
	if _, err := New(Hybrid, 8, WithClusterSize(3)); err == nil {
		t.Error("cluster not dividing window should fail")
	}
	if _, err := New(Hybrid, 8, WithClusterSize(0)); err == nil {
		t.Error("cluster 0 should fail")
	}
	if _, err := New(UltraII, 8, WithUltra2Mode(5)); err == nil {
		t.Error("bad mode should fail")
	}
	if _, err := New(UltraI, 8, WithRegisterWidth(0)); err == nil {
		t.Error("width 0 should fail")
	}
}

func TestPhysicalModels(t *testing.T) {
	tech := DefaultTech()
	for _, tc := range []struct {
		arch Arch
		opts []Option
	}{
		{UltraI, nil},
		{UltraII, nil},
		{UltraII, []Option{WithUltra2Mode(1)}},
		{UltraII, []Option{WithUltra2Mode(2)}},
		{Hybrid, []Option{WithClusterSize(32)}},
	} {
		p, err := New(tc.arch, 64, tc.opts...)
		if err != nil {
			t.Fatal(err)
		}
		md, err := p.Physical(tech)
		if err != nil {
			t.Fatal(err)
		}
		if md.AreaL2() <= 0 || md.GateDelay <= 0 || md.MaxWireL <= 0 {
			t.Errorf("%s: implausible model %+v", tc.arch, md)
		}
	}
}

func TestReferenceAgreesWithProcessors(t *testing.T) {
	for _, w := range Kernels() {
		want, err := Reference(w.Prog, w.Mem())
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		p, _ := New(Hybrid, 32, WithClusterSize(8))
		got, err := p.Run(w.Prog, w.Mem())
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		for r := range want {
			if got.Regs[r] != want[r] {
				t.Errorf("%s: r%d = %d, want %d", w.Name, r, got.Regs[r], want[r])
			}
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	prog, _ := Assemble("add r1, r2, r3\nhalt")
	text := Disassemble(prog.Insts)
	if !strings.Contains(text, "add r1, r2, r3") {
		t.Errorf("disassembly: %s", text)
	}
}

func TestBandwidthConstructors(t *testing.T) {
	if ConstBandwidth(4).Of(100) != 4 || LinearBandwidth().Of(7) != 7 {
		t.Error("bandwidth constructors wrong")
	}
	if PowerBandwidth(1, 0.5).Of(64) != 8 {
		t.Error("power bandwidth wrong")
	}
}

func TestPredictorConstructors(t *testing.T) {
	for _, p := range []Predictor{Bimodal(4), GShare(4, 2), StaticPredictor(true)} {
		if p.Name() == "" {
			t.Error("predictor name empty")
		}
	}
}

func TestExtensionOptions(t *testing.T) {
	w := Kernels()[0]
	p, err := New(Hybrid, 32, WithClusterSize(8),
		WithSharedALUs(4),
		WithSelfTimedForwarding(nil),
		WithMemoryRenaming(),
		WithFetchModel(FetchTrace),
		WithFetchWidth(8),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(w.Prog, w.Mem())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reference(w.Prog, w.Mem())
	if err != nil {
		t.Fatal(err)
	}
	for r := range want {
		if res.Regs[r] != want[r] {
			t.Errorf("r%d = %d, want %d", r, res.Regs[r], want[r])
		}
	}
	if _, err := New(UltraI, 8, WithSharedALUs(0)); err == nil {
		t.Error("0 shared ALUs should fail")
	}
	if _, err := New(UltraI, 8, WithFetchWidth(0)); err == nil {
		t.Error("0 fetch width should fail")
	}
}

func TestUltra2WrapAround(t *testing.T) {
	// The wrap-around variant refills per station: on the batch-penalty
	// workload it matches the Ultrascalar I's cycle count, at about twice
	// the grid area.
	w := Kernels()[2] // dotprod
	wrap, err := New(UltraII, 16, WithUltra2WrapAround())
	if err != nil {
		t.Fatal(err)
	}
	if wrap.ClusterSize() != 1 {
		t.Errorf("wrap variant cluster size %d, want 1", wrap.ClusterSize())
	}
	rw, err := wrap.Run(w.Prog, w.Mem())
	if err != nil {
		t.Fatal(err)
	}
	u1, _ := New(UltraI, 16)
	r1, err := u1.Run(w.Prog, w.Mem())
	if err != nil {
		t.Fatal(err)
	}
	if rw.Stats.Cycles != r1.Stats.Cycles {
		t.Errorf("wrap-around UltraII %d cycles, UltraI %d — should match", rw.Stats.Cycles, r1.Stats.Cycles)
	}
	tech := DefaultTech()
	base, _ := New(UltraII, 16)
	mdWrap, err := wrap.Physical(tech)
	if err != nil {
		t.Fatal(err)
	}
	mdBase, err := base.Physical(tech)
	if err != nil {
		t.Fatal(err)
	}
	if r := mdWrap.AreaL2() / mdBase.AreaL2(); r < 1.9 || r > 2.1 {
		t.Errorf("wrap area ratio %.2f, want about 2", r)
	}
	if _, err := New(UltraI, 8, WithUltra2WrapAround()); err == nil {
		t.Error("wrap-around on UltraI should fail")
	}
}

func TestClusterCacheOption(t *testing.T) {
	p, err := New(Hybrid, 16, WithClusterSize(4), WithClusterCaches(64))
	if err != nil {
		t.Fatal(err)
	}
	w := Kernels()[1] // vecsum
	res, err := p.Run(w.Prog, w.Mem())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Reference(w.Prog, w.Mem())
	if res.Regs[3] != want[3] {
		t.Errorf("r3 = %d, want %d", res.Regs[3], want[3])
	}
}

func TestRunGateLevel(t *testing.T) {
	w := Kernels()[0] // fib
	want, err := Reference(w.Prog, w.Mem())
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range []Arch{UltraI, UltraII, Hybrid} {
		res, err := RunGateLevel(arch, w.Prog, w.Mem(), 4, 2)
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		for r := range want {
			if res.Regs[r] != want[r] {
				t.Errorf("%s: r%d = %d, want %d", arch, r, res.Regs[r], want[r])
			}
		}
	}
	if _, err := RunGateLevel(Arch(9), w.Prog, w.Mem(), 4, 2); err == nil {
		t.Error("unknown arch should fail")
	}
}

func TestAccessors(t *testing.T) {
	p, _ := New(Hybrid, 32, WithClusterSize(8))
	if p.Arch() != Hybrid || p.Window() != 32 {
		t.Error("accessors wrong")
	}
}

// TestFaultInjectionOption drives fault injection through the public
// API: a seeded plan with the golden checker recovers every detected
// fault, so the architectural result still matches the reference run.
func TestFaultInjectionOption(t *testing.T) {
	w := Kernels()[0] // fib
	want, err := Reference(w.Prog, w.Mem())
	if err != nil {
		t.Fatal(err)
	}
	plan := NewFaultPlan(7, FaultGenParams{
		Window: 8, NumRegs: 32, MaxCycle: 200, N: 4,
	})
	var log FaultLog
	p, err := New(UltraI, 8, WithFaultInjection(plan, FaultDetectGolden, &log))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(w.Prog, w.Mem())
	if err != nil {
		t.Fatal(err)
	}
	for r := range want {
		if res.Regs[r] != want[r] {
			t.Errorf("r%d = %d, want %d", r, res.Regs[r], want[r])
		}
	}
	if log.Detected != log.Recovered {
		t.Errorf("detected %d faults but recovered %d", log.Detected, log.Recovered)
	}
	// The plan round-trips through its text encoding.
	decoded, err := DecodeFaultPlan(plan.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !decoded.Equal(plan) {
		t.Error("fault plan did not round-trip through Encode/Decode")
	}
	if len(AllFaultSites()) == 0 {
		t.Error("no fault sites defined")
	}
}

// TestWatchdogOption: a program whose only runnable work is forwarded
// with unbounded latency can never retire; the watchdog converts the
// hang into ErrLivelock with a diagnostic snapshot.
func TestWatchdogOption(t *testing.T) {
	prog, err := Assemble(`
	    li r1, 1
	    add r1, r1, r1
	    halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(UltraI, 4,
		WithWatchdog(100),
		WithSelfTimedForwarding(func(d int) int { return 1 << 30 }))
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Run(prog.Insts, NewMemory())
	if !errors.Is(err, ErrLivelock) {
		t.Fatalf("got %v, want ErrLivelock", err)
	}
	var le *LivelockError
	if !errors.As(err, &le) {
		t.Fatalf("error %T carries no LivelockError snapshot", err)
	}
	if le.Occupied == 0 || le.Window != 4 {
		t.Errorf("snapshot %+v lacks occupancy diagnostics", le)
	}
}

// busyLoop is a long countdown loop: enough cycles for a deadline or
// cancellation to land mid-run on any host.
const busyLoop = `
	li r1, 500000
loop:
	addi r1, r1, -1
	bne r1, r0, loop
	halt
`

func TestWithContextCancelsRun(t *testing.T) {
	prog, err := Assemble(busyLoop)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, err := New(Hybrid, 16, WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Run(prog.Insts, NewMemory())
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want a *CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not unwrap to context.Canceled", err)
	}

	// The explicit per-call context overrides the configured one: a live
	// context on the same processor lets the run finish.
	res, err := p.RunCtx(context.Background(), prog.Insts, NewMemory())
	if err != nil {
		t.Fatalf("RunCtx with a live context: %v", err)
	}
	if res.Regs[1] != 0 {
		t.Errorf("r1 = %d, want 0 after the countdown", res.Regs[1])
	}
}

func TestWithDeadlineExpiresRun(t *testing.T) {
	prog, err := Assemble(busyLoop)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(UltraI, 16, WithDeadline(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Run(prog.Insts, NewMemory())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want an error wrapping context.DeadlineExceeded", err)
	}

	// Each run arms its own timer: a generous deadline on the same
	// processor completes normally.
	p2, err := New(UltraI, 16, WithDeadline(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Run(prog.Insts, NewMemory()); err != nil {
		t.Errorf("run under a generous deadline failed: %v", err)
	}
}

func TestWithDeadlineRejectsNonPositive(t *testing.T) {
	if _, err := New(UltraI, 8, WithDeadline(0)); err == nil {
		t.Error("WithDeadline(0) accepted")
	}
	if _, err := New(UltraI, 8, WithDeadline(-time.Second)); err == nil {
		t.Error("negative deadline accepted")
	}
}
